"""Tests for the A/B-test platform simulator and harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ab.experiment import RANDOM_ARM, ABTest
from repro.ab.platform import Platform
from repro.data.rct import RCTDataset


@pytest.fixture
def platform():
    return Platform(dataset="criteo", random_state=0)


def make_cohort(n=80, seed=0, tau_c=None):
    """A small hand-built cohort with controllable ground-truth costs."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    tau_c = np.full(n, 0.4) if tau_c is None else np.broadcast_to(tau_c, (n,)).copy()
    tau_r = 0.5 * tau_c
    return RCTDataset(
        x=x,
        t=np.zeros(n, dtype=np.int64),
        y_r=np.zeros(n),
        y_c=np.zeros(n),
        tau_r=tau_r,
        tau_c=tau_c,
        roi=tau_r / tau_c,
        name="toy",
    )


class TestPlatform:
    def test_daily_cohort_shape(self, platform):
        cohort = platform.daily_cohort(500, day=1)
        assert cohort.n == 500
        assert cohort.n_features == 12

    def test_day_effect_modulates_effects(self):
        p = Platform(dataset="criteo", day_effect=0.3, random_state=0)
        day2 = p.daily_cohort(4000, day=2)  # sin(4pi/7) > 0 -> boosted
        day5 = p.daily_cohort(4000, day=5)  # sin(10pi/7) < 0 -> damped
        assert day2.tau_r.mean() > day5.tau_r.mean()

    def test_shifted_platform_tilts_cohorts(self):
        from repro.data.shift import shift_direction

        base = Platform(dataset="criteo", shifted=False, random_state=0)
        shifted = Platform(dataset="criteo", shifted=True, random_state=0)
        c_base = base.daily_cohort(4000, day=1)
        c_shift = shifted.daily_cohort(4000, day=1)
        d = shift_direction(c_base)
        assert float((c_shift.x @ d).mean()) > float((c_base.x @ d).mean()) + 0.2

    def test_realize_arm_budget(self, platform):
        cohort = platform.daily_cohort(400, day=1)
        order = np.arange(400)
        outcome = platform.realize_arm(cohort, order, budget=10.0)
        assert outcome["spend"] <= 10.0 + 1e-9
        assert outcome["n_treated"] >= 1
        assert outcome["revenue"] >= outcome["baseline_revenue"]

    def test_realize_arm_budget_zero_treats_nobody(self, platform):
        """Regression: budget=0 used to still treat the first user."""
        cohort = make_cohort(50)
        out = platform.realize_arm(cohort, np.arange(50), budget=0.0)
        assert out["n_treated"] == 0
        assert out["spend"] == 0.0
        assert out["incremental_revenue"] == 0.0
        assert out["revenue"] == out["baseline_revenue"]

    def test_realize_arm_exact_boundary_stops_before_crossing(self, platform):
        """Regression: the draw that reaches B is not made (spend < B)."""
        # near-certain unit costs make the spend-down deterministic
        cohort = make_cohort(40, tau_c=1.0 - 1e-12)
        out = platform.realize_arm(cohort, np.arange(40), budget=5.0)
        assert out["n_treated"] == 4  # the 5th draw would hit B exactly
        assert out["spend"] == 4.0

    @settings(max_examples=40, deadline=None)
    @given(
        budget=st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_realize_arm_never_overspends(self, budget, seed):
        """Property: spend <= budget always; strictly below when B > 0."""
        rng = np.random.default_rng(seed)
        platform = Platform(dataset="criteo", random_state=seed)
        cohort = make_cohort(60, seed=seed, tau_c=rng.uniform(0.05, 0.95, 60))
        order = rng.permutation(60)
        out = platform.realize_arm(cohort, order, budget=budget)
        assert out["spend"] <= budget
        if budget == 0.0:
            assert out["n_treated"] == 0
        if budget > 0.0:
            assert out["spend"] < budget

    def test_realize_arm_bad_order(self, platform):
        cohort = platform.daily_cohort(50, day=1)
        with pytest.raises(ValueError, match="permutation"):
            platform.realize_arm(cohort, np.zeros(50, dtype=int), budget=1.0)

    def test_realize_arm_negative_budget(self, platform):
        cohort = platform.daily_cohort(50, day=1)
        with pytest.raises(ValueError, match="budget"):
            platform.realize_arm(cohort, np.arange(50), budget=-1.0)

    def test_realize_arm_nan_budget_rejected(self, platform):
        """NaN would searchsort past every cost and treat the whole arm."""
        cohort = make_cohort(20)
        with pytest.raises(ValueError, match="budget"):
            platform.realize_arm(cohort, np.arange(20), budget=float("nan"))
        with pytest.raises(ValueError, match="budgets"):
            platform.realize_arms(cohort, [np.arange(20)], [float("nan")])

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="day_effect"):
            Platform(day_effect=1.5)
        with pytest.raises(ValueError, match="base_revenue_rate"):
            Platform(base_revenue_rate=0.0)

    def test_daily_cohort_retries_with_larger_oversample(self, monkeypatch):
        """An under-producing draw doubles the oversample and retries."""
        from repro.ab import platform as platform_module

        real = platform_module.load_dataset
        requested = []

        def flaky(name, n, random_state=None):
            requested.append(n)
            if len(requested) == 1:
                return real(name, 50, random_state=random_state)
            return real(name, n, random_state=random_state)

        monkeypatch.setattr(platform_module, "load_dataset", flaky)
        cohort = Platform(dataset="criteo", random_state=0).daily_cohort(200, day=1)
        assert cohort.n == 200
        assert len(requested) == 2
        assert requested[1] == 2 * requested[0]

    def test_shifted_cohort_retries_on_short_pool(self, monkeypatch):
        """A pool too small to tilt retries instead of raising ValueError."""
        from repro.ab import platform as platform_module

        real = platform_module.load_dataset
        requested = []

        def flaky(name, n, random_state=None):
            requested.append(n)
            if len(requested) == 1:
                return real(name, 50, random_state=random_state)  # < n: can't tilt
            return real(name, n, random_state=random_state)

        monkeypatch.setattr(platform_module, "load_dataset", flaky)
        p = Platform(dataset="criteo", shifted=True, random_state=0)
        cohort = p.daily_cohort(200, day=1)
        assert cohort.n == 200
        assert len(requested) == 2
        assert requested[1] == 2 * requested[0]

    def test_daily_cohort_gives_up_after_three_attempts(self, monkeypatch):
        from repro.ab import platform as platform_module

        real = platform_module.load_dataset
        requested = []

        def starved(name, n, random_state=None):
            requested.append(n)
            return real(name, 10, random_state=random_state)

        monkeypatch.setattr(platform_module, "load_dataset", starved)
        with pytest.raises(RuntimeError, match="oversample"):
            Platform(dataset="criteo", random_state=0).daily_cohort(200, day=1)
        assert len(requested) == 3

    def test_iter_events_streams_whole_cohort(self, platform):
        cohort = platform.daily_cohort(120, day=1)
        events = list(platform.iter_events(cohort, random_state=4))
        assert sorted(i for i, _x in events) == list(range(120))
        for i, x_row in events[:5]:
            np.testing.assert_array_equal(x_row, cohort.x[i])


class TestRealizeArms:
    def _partition(self, n, n_arms, rng):
        perm = rng.permutation(n)
        return np.array_split(perm, n_arms)

    def test_matches_realize_arm_contract(self, platform):
        cohort = make_cohort(90, seed=1, tau_c=np.linspace(0.1, 0.9, 90))
        rng = np.random.default_rng(2)
        orders = self._partition(90, 3, rng)
        budgets = [3.0, 0.0, 1e9]
        outs = platform.realize_arms(cohort, orders, budgets)
        assert len(outs) == 3
        for out, order, budget in zip(outs, orders, budgets):
            assert set(out) == {
                "revenue",
                "baseline_revenue",
                "incremental_revenue",
                "spend",
                "n_treated",
            }
            assert out["spend"] <= budget
            assert 0 <= out["n_treated"] <= len(order)
            assert out["revenue"] == pytest.approx(
                out["baseline_revenue"] + out["incremental_revenue"]
            )
        assert outs[1]["n_treated"] == 0  # budget=0 arm treats nobody
        assert outs[2]["n_treated"] == len(orders[2])  # unbounded arm treats all

    def test_partial_coverage_allowed(self, platform):
        cohort = make_cohort(100)
        orders = [np.arange(10), np.arange(50, 70)]
        outs = platform.realize_arms(cohort, orders, [5.0, 5.0])
        assert outs[0]["baseline_revenue"] == pytest.approx(10 * platform.base_revenue_rate)
        assert outs[1]["baseline_revenue"] == pytest.approx(20 * platform.base_revenue_rate)

    def test_overlapping_arms_rejected(self, platform):
        cohort = make_cohort(30)
        with pytest.raises(ValueError, match="disjoint"):
            platform.realize_arms(cohort, [np.arange(10), np.arange(5, 15)], [1.0, 1.0])

    def test_out_of_range_rejected(self, platform):
        cohort = make_cohort(30)
        with pytest.raises(ValueError, match="range"):
            platform.realize_arms(cohort, [np.array([0, 30])], [1.0])

    def test_mismatched_budgets_rejected(self, platform):
        cohort = make_cohort(30)
        with pytest.raises(ValueError, match="budgets"):
            platform.realize_arms(cohort, [np.arange(10)], [1.0, 2.0])

    def test_negative_budget_rejected(self, platform):
        cohort = make_cohort(30)
        with pytest.raises(ValueError, match="budgets"):
            platform.realize_arms(cohort, [np.arange(10)], [-1.0])

    def test_spend_semantics_match_realize_arm(self):
        """Both paths enforce the same strict boundary on the same draws."""
        cohort = make_cohort(64, tau_c=1.0 - 1e-12)  # deterministic unit costs
        p = Platform(dataset="criteo", random_state=0)
        outs = p.realize_arms(cohort, [np.arange(32), np.arange(32, 64)], [7.0, 3.0])
        assert [o["n_treated"] for o in outs] == [6, 2]
        assert [o["spend"] for o in outs] == [6.0, 2.0]


class TestChunkedCohorts:
    def test_chunked_matches_requested_size(self):
        p = Platform(dataset="criteo", chunk_size=400, random_state=0)
        cohort = p.daily_cohort(1500, day=2)
        assert cohort.n == 1500
        assert cohort.n_features == 12
        assert np.all(cohort.tau_c > 0)

    def test_chunked_low_yield_generator(self):
        """meituan keeps ~40% of generated rows; chunking must adapt."""
        p = Platform(dataset="meituan", chunk_size=300, random_state=0)
        cohort = p.daily_cohort(1000, day=1)
        assert cohort.n == 1000

    def test_chunked_shifted_cohort_is_tilted(self):
        from repro.data.shift import shift_direction

        base = Platform(dataset="criteo", chunk_size=500, random_state=0)
        shifted = Platform(dataset="criteo", shifted=True, chunk_size=500, random_state=0)
        c_base = base.daily_cohort(2000, day=1)
        c_shift = shifted.daily_cohort(2000, day=1)
        assert c_shift.n == 2000
        d = shift_direction(c_base)
        assert float((c_shift.x @ d).mean()) > float((c_base.x @ d).mean()) + 0.15

    def test_chunked_day_effect_applied(self):
        p = Platform(dataset="criteo", day_effect=0.3, chunk_size=500, random_state=0)
        day2 = p.daily_cohort(2000, day=2)  # sin(4pi/7) > 0 -> boosted
        day5 = p.daily_cohort(2000, day=5)  # sin(10pi/7) < 0 -> damped
        assert day2.tau_r.mean() > day5.tau_r.mean()

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            Platform(chunk_size=5)


class TestCRNUniforms:
    """Externally-supplied per-user uniforms (the CRN hook)."""

    def test_supplied_uniforms_are_deterministic(self, platform):
        cohort = make_cohort(60, tau_c=np.linspace(0.1, 0.9, 60))
        rng = np.random.default_rng(3)
        cost_u, reward_u = rng.random(60), rng.random(60)
        order = np.arange(60)
        a = platform.realize_arm(cohort, order, 8.0, cost_uniforms=cost_u, reward_uniforms=reward_u)
        b = platform.realize_arm(cohort, order, 8.0, cost_uniforms=cost_u, reward_uniforms=reward_u)
        assert a == b

    def test_supplied_uniforms_leave_platform_stream_untouched(self):
        p1 = Platform(dataset="criteo", random_state=42)
        p2 = Platform(dataset="criteo", random_state=42)
        cohort = make_cohort(40)
        u = np.random.default_rng(0).random(40)
        p1.realize_arm(cohort, np.arange(40), 5.0, cost_uniforms=u, reward_uniforms=u)
        # p1 realised a full arm with supplied draws; p2 did nothing —
        # their streams must still coincide
        assert p1._rng.random() == p2._rng.random()

    def test_same_user_same_outcome_under_any_order(self, platform):
        """The CRN property: a user's realised cost/reward is a function
        of the user, not of the position a policy treats them in."""
        cohort = make_cohort(50, tau_c=np.linspace(0.05, 0.95, 50))
        u = np.random.default_rng(1).random(50)
        big = 1e9  # everyone treated under both orders
        fwd = platform.realize_arm(
            cohort, np.arange(50), big, cost_uniforms=u, reward_uniforms=u
        )
        rev = platform.realize_arm(
            cohort, np.arange(50)[::-1], big, cost_uniforms=u, reward_uniforms=u
        )
        assert fwd["spend"] == rev["spend"]
        assert fwd["incremental_revenue"] == rev["incremental_revenue"]
        assert fwd["n_treated"] == rev["n_treated"] == 50

    def test_wrong_length_rejected(self, platform):
        cohort = make_cohort(30)
        with pytest.raises(ValueError, match="cost_uniforms"):
            platform.realize_arms(cohort, [np.arange(30)], [1.0], cost_uniforms=np.zeros(29))
        with pytest.raises(ValueError, match="reward_uniforms"):
            platform.realize_arms(cohort, [np.arange(30)], [1.0], reward_uniforms=np.zeros(31))

    def test_out_of_range_rejected(self, platform):
        cohort = make_cohort(30)
        bad = np.zeros(30)
        bad[4] = 1.0  # uniforms live in [0, 1)
        with pytest.raises(ValueError, match="cost_uniforms"):
            platform.realize_arms(cohort, [np.arange(30)], [1.0], cost_uniforms=bad)
        with pytest.raises(ValueError, match="reward_uniforms"):
            platform.realize_arms(cohort, [np.arange(30)], [1.0], reward_uniforms=-bad)


class TestParallelGeneration:
    """parallel=/n_workers= must change wall time only, never output."""

    def test_daily_cohort_bit_identical(self):
        serial = Platform(dataset="criteo", chunk_size=300, random_state=9)
        pooled = Platform(
            dataset="criteo", chunk_size=300, parallel=True, n_workers=2, random_state=9
        )
        a = serial.daily_cohort(1000, day=2)
        b = pooled.daily_cohort(1000, day=2)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.tau_r, b.tau_r)
        np.testing.assert_array_equal(a.tau_c, b.tau_c)

    def test_shifted_daily_cohort_bit_identical(self):
        serial = Platform(dataset="criteo", shifted=True, chunk_size=300, random_state=9)
        pooled = Platform(
            dataset="criteo", shifted=True, chunk_size=300, parallel=True, n_workers=2,
            random_state=9,
        )
        a = serial.daily_cohort(800, day=1)
        b = pooled.daily_cohort(800, day=1)
        np.testing.assert_array_equal(a.x, b.x)

    def test_per_call_override_wins(self):
        pooled = Platform(
            dataset="criteo", chunk_size=300, parallel=True, n_workers=2, random_state=9
        )
        serial = Platform(dataset="criteo", chunk_size=300, random_state=9)
        a = pooled.daily_cohort(700, day=1, parallel=False)
        b = serial.daily_cohort(700, day=1)
        np.testing.assert_array_equal(a.x, b.x)

    def test_abtest_run_bit_identical(self):
        """End-to-end: partitions, orders, and realised outcomes match
        because the platform stream advances identically either way."""
        def run(parallel):
            platform = Platform(dataset="criteo", chunk_size=300, random_state=5)
            test = ABTest(
                platform,
                {"m": lambda x: x[:, 0]},
                budget_fraction=0.3,
                random_state=5,
                parallel=parallel,
                n_workers=2,
            )
            return test.run(n_days=2, cohort_size=700)

        serial, pooled = run(False), run(True)
        for day_s, day_p in zip(serial.days, pooled.days):
            assert day_s == day_p

    def test_invalid_n_workers(self):
        with pytest.raises(ValueError, match="n_workers"):
            Platform(n_workers=0)


class TestABTest:
    def test_runs_and_reports(self, platform):
        policies = {"constant": lambda x: np.ones(x.shape[0])}
        test = ABTest(platform, policies, budget_fraction=0.3, random_state=0)
        result = test.run(n_days=3, cohort_size=600)
        assert len(result.days) == 3
        assert set(result.days[0].revenue) == {"constant", RANDOM_ARM}
        uplift = result.uplift_vs_random
        assert list(uplift) == ["constant"]
        assert len(uplift["constant"]) == 3

    def test_good_policy_beats_random(self):
        """A policy ranking by a noisy view of the true ROI must win."""
        platform = Platform(dataset="criteo", random_state=1)
        # build a 'semi-oracle' policy: the first features drive the true
        # ROI in the analogs, so their projection correlates with it
        from repro.data import criteo_uplift_v2

        probe = criteo_uplift_v2(4000, random_state=5)
        weights = np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]

        policies = {"semi_oracle": lambda x: x @ weights}
        test = ABTest(platform, policies, budget_fraction=0.3, random_state=0)
        result = test.run(n_days=5, cohort_size=3000)
        mean_uplift = result.mean_uplift()["semi_oracle"]
        assert mean_uplift > 0.0

    def test_reserved_arm_name(self, platform):
        with pytest.raises(ValueError, match="reserved"):
            ABTest(platform, {RANDOM_ARM: lambda x: np.ones(len(x))})

    def test_empty_policies(self, platform):
        with pytest.raises(ValueError, match="At least one"):
            ABTest(platform, {})

    def test_cohort_too_small(self, platform):
        policies = {"a": lambda x: np.ones(x.shape[0])}
        test = ABTest(platform, policies)
        with pytest.raises(ValueError, match="too small"):
            test.run(n_days=1, cohort_size=15)

    def test_policy_returning_wrong_length_rejected(self, platform):
        policies = {"broken": lambda x: np.ones(3)}
        test = ABTest(platform, policies, random_state=0)
        with pytest.raises(ValueError, match="scores"):
            test.run(n_days=1, cohort_size=600)

    def test_invalid_budget_fraction(self, platform):
        with pytest.raises(ValueError, match="budget_fraction"):
            ABTest(platform, {"a": lambda x: np.ones(len(x))}, budget_fraction=0.0)

    def test_remainder_users_not_discarded(self, platform):
        """Regression: cohort_size % n_arms users used to be dropped."""
        policies = {
            "a": lambda x: np.ones(x.shape[0]),
            "b": lambda x: -np.ones(x.shape[0]),
        }
        test = ABTest(platform, policies, random_state=0)
        result = test.run(n_days=1, cohort_size=100)  # 100 % 3 == 1
        day = result.days[0]
        assert sum(day.n_users.values()) == 100
        assert sorted(day.n_users.values()) == [33, 33, 34]
        # the recorded sizes match the realised (expected) baselines
        for arm in day.revenue:
            baseline = day.revenue[arm] - day.incremental_revenue[arm]
            assert baseline == pytest.approx(day.n_users[arm] * platform.base_revenue_rate)

    def test_uplift_normalised_per_user(self):
        """A remainder user must not bias uplift_vs_random upward."""
        from repro.ab.experiment import ABTestResult, DayResult

        # identical per-user revenue, one extra user in the model arm:
        # raw revenue differs, per-user uplift must be exactly zero
        day = DayResult(
            day=1,
            revenue={"m": 50.5, RANDOM_ARM: 50.0},
            incremental_revenue={"m": 0.0, RANDOM_ARM: 0.0},
            spend={"m": 0.0, RANDOM_ARM: 0.0},
            n_treated={"m": 0, RANDOM_ARM: 0},
            n_users={"m": 101, RANDOM_ARM: 100},
        )
        result = ABTestResult(days=[day])
        assert result.uplift_vs_random["m"][0] == pytest.approx(0.0)

    def test_run_day_on_fixed_cohort(self, platform):
        policies = {"constant": lambda x: np.ones(x.shape[0])}
        test = ABTest(platform, policies, random_state=0)
        cohort = platform.daily_cohort(300, day=1)
        day = test.run_day(cohort, day=7)
        assert day.day == 7
        assert set(day.revenue) == {"constant", RANDOM_ARM}
        assert all(s >= 0 for s in day.spend.values())

    def test_arm_spend_never_exceeds_budget(self, platform, monkeypatch):
        """The harness-level view of the strict C-BTAP constraint."""
        seen_budgets = []
        real = platform.realize_arms

        def spy(cohort, orders, budgets):
            seen_budgets.append(list(budgets))
            return real(cohort, orders, budgets)

        monkeypatch.setattr(platform, "realize_arms", spy)
        policies = {"a": lambda x: x[:, 0]}
        test = ABTest(platform, policies, budget_fraction=0.2, random_state=0)
        result = test.run(n_days=2, cohort_size=400)
        assert len(seen_budgets) == 2
        for day, budgets in zip(result.days, seen_budgets):
            spends = [day.spend[arm] for arm in list(test.policies) + [RANDOM_ARM]]
            for spend, budget in zip(spends, budgets):
                assert spend <= budget

"""Tests for the Two-Phase Method composition."""

import numpy as np
import pytest

from repro.causal.meta import TLearner
from repro.causal.tpm import TPM_VARIANTS, TwoPhaseMethod, make_tpm
from repro.linear import RidgeRegression


def two_outcome_rct(n=2500, seed=0):
    """tau_r(x) = 0.5 + 0.3 x0, tau_c(x) = 1.0 + 0.5 x1 (both positive)."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-0.9, 0.9, size=(n, 3))
    t = rng.integers(0, 2, size=n)
    tau_r = 0.5 + 0.3 * x[:, 0]
    tau_c = 1.0 + 0.5 * x[:, 1]
    y_r = 0.2 * x[:, 2] + tau_r * t + 0.2 * rng.normal(size=n)
    y_c = 0.3 * x[:, 2] + tau_c * t + 0.2 * rng.normal(size=n)
    return x, y_r, y_c, t, tau_r / tau_c


def ridge_tpm():
    factory = lambda: RidgeRegression(alpha=1e-3)
    return TwoPhaseMethod(
        TLearner(base_factory=factory), TLearner(base_factory=factory)
    )


class TestTwoPhaseMethod:
    def test_roi_is_division_of_uplifts(self):
        x, y_r, y_c, t, _ = two_outcome_rct()
        tpm = ridge_tpm().fit(x, y_r, y_c, t)
        tau_r, tau_c = tpm.predict_uplifts(x)
        expected = tau_r / np.maximum(tau_c, tpm.cost_floor)
        np.testing.assert_allclose(tpm.predict_roi(x), expected)

    def test_recovers_roi_ranking(self):
        x, y_r, y_c, t, roi = two_outcome_rct()
        tpm = ridge_tpm().fit(x, y_r, y_c, t)
        pred = tpm.predict_roi(x)
        assert np.corrcoef(pred, roi)[0, 1] > 0.6

    def test_cost_floor_guards_division(self):
        x, y_r, y_c, t, _ = two_outcome_rct(n=500)
        tpm = ridge_tpm()
        tpm.cost_floor = 10.0  # force the floor to bind everywhere
        tpm.fit(x, y_r, y_c, t)
        pred = tpm.predict_roi(x)
        assert np.all(np.isfinite(pred))
        assert np.all(np.abs(pred) <= np.abs(tpm.predict_uplifts(x)[0] / 10.0) + 1e-12)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            ridge_tpm().predict_roi(np.ones((1, 3)))

    def test_invalid_cost_floor(self):
        with pytest.raises(ValueError, match="cost_floor"):
            TwoPhaseMethod(TLearner(), TLearner(), cost_floor=0.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="Inconsistent"):
            ridge_tpm().fit(np.ones((4, 2)), np.ones(4), np.ones(3), [0, 1, 0, 1])


class TestMakeTpm:
    def test_all_variants_constructible(self):
        for variant in TPM_VARIANTS:
            tpm = make_tpm(variant, random_state=0, fast=True)
            assert isinstance(tpm, TwoPhaseMethod)

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="Unknown TPM variant"):
            make_tpm("GPT")

    @pytest.mark.slow
    def test_sl_variant_end_to_end(self):
        x, y_r, y_c, t, roi = two_outcome_rct(n=1200)
        tpm = make_tpm("SL", random_state=0, fast=True).fit(x, y_r, y_c, t)
        pred = tpm.predict_roi(x)
        assert pred.shape == (1200,)
        assert np.all(np.isfinite(pred))

    def test_revenue_and_cost_models_independent(self):
        tpm = make_tpm("SL", random_state=0, fast=True)
        assert tpm.revenue_model is not tpm.cost_model

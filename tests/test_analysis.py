"""Tests for repro.analysis — the contract linter.

Three layers:

1. **The gate**: the full rule set over ``src/`` yields zero findings.
   Because unused suppressions are themselves findings (RPR000), this
   single assertion pins every shipped fix *and* every shipped
   suppression: deleting a fix resurfaces its finding; deleting a
   violation while keeping its allow comment trips the staleness audit.
2. **Per-rule fixtures**: every ``bad_*`` fixture under
   ``tests/analysis_fixtures/`` must produce findings exactly on the
   lines marked ``# finding`` (and only with its directory's code);
   every other fixture must be clean.
3. **Plumbing**: suppressions, the RPR000 audit, the JSON schema
   round-trip, and the CLI's exit-code contract.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    META_CODE,
    SCHEMA,
    Analyzer,
    Finding,
    analyze_paths,
    analyze_source,
    default_rules,
    findings_from_json,
    iter_python_files,
    render_json,
    render_text,
    scan_suppressions,
)

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
FIXTURES = REPO / "tests" / "analysis_fixtures"

RULE_DIRS = sorted(
    d.name for d in FIXTURES.iterdir() if d.is_dir() and d.name.startswith("rpr")
)


# ---------------------------------------------------------------------------
# 1. the gate
# ---------------------------------------------------------------------------
def test_src_tree_is_clean():
    """The acceptance criterion: zero findings over src/.

    This also audits every inline suppression — a stale allow comment
    or an unknown code shows up here as RPR000.
    """
    findings = analyze_paths([SRC])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_src_suppressions_are_few_and_deliberate():
    """Every shipped suppression is enumerable; growth is a review event."""
    total = 0
    for path in iter_python_files([SRC]):
        total += sum(len(s.codes) for s in scan_suppressions(path.read_text()))
    assert total <= 10, "suppression budget exceeded — fix the code instead"


# ---------------------------------------------------------------------------
# 2. per-rule fixtures
# ---------------------------------------------------------------------------
def _marked_lines(path: Path) -> set[int]:
    return {
        i
        for i, line in enumerate(path.read_text().splitlines(), 1)
        if "# finding" in line
    }


def _fixture_files(kind: str):
    for rule_dir in RULE_DIRS:
        for path in sorted((FIXTURES / rule_dir).rglob("*.py")):
            is_bad = path.name.startswith("bad_")
            if (kind == "bad") == is_bad:
                yield pytest.param(
                    rule_dir, path, id=f"{rule_dir}/{path.relative_to(FIXTURES / rule_dir)}"
                )


@pytest.mark.parametrize("rule_dir, path", _fixture_files("bad"))
def test_bad_fixture_findings(rule_dir, path):
    expected_code = rule_dir.upper()
    findings = analyze_source(path, path.read_text())
    assert findings, f"{path} should produce findings"
    assert {f.code for f in findings} == {expected_code}
    assert {f.line for f in findings} == _marked_lines(path), "\n" + "\n".join(
        f.format() for f in findings
    )


@pytest.mark.parametrize("rule_dir, path", _fixture_files("good"))
def test_good_fixture_is_clean(rule_dir, path):
    findings = analyze_source(path, path.read_text())
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_every_rule_has_fixtures():
    codes = {rule.code for rule in default_rules()}
    assert {d.upper() for d in RULE_DIRS} == codes
    for rule_dir in RULE_DIRS:
        names = [p.name for p in (FIXTURES / rule_dir).rglob("*.py")]
        assert any(n.startswith("bad_") for n in names), rule_dir
        assert not all(n.startswith("bad_") for n in names), rule_dir


# ---------------------------------------------------------------------------
# 3a. suppressions and the RPR000 audit
# ---------------------------------------------------------------------------
def test_suppressed_fixture_is_clean():
    path = FIXTURES / "suppress" / "good_suppressed.py"
    assert analyze_source(path, path.read_text()) == []


def test_multi_code_suppression_covers_both():
    source = (FIXTURES / "suppress" / "good_suppressed.py").read_text()
    sups = scan_suppressions(source)
    assert any(set(s.codes) == {"RPR001", "RPR006"} for s in sups)


def test_allow_shaped_string_literal_is_not_a_suppression():
    sups = scan_suppressions('X = "# repro: allow[RPR001]"\n')
    assert sups == []


def test_unused_suppression_is_reported():
    path = FIXTURES / "suppress" / "bad_unused_suppression.py"
    findings = analyze_source(path, path.read_text())
    assert [f.code for f in findings] == [META_CODE]
    assert "unused suppression" in findings[0].message


def test_unknown_code_suppression_is_reported_and_does_not_suppress():
    path = FIXTURES / "suppress" / "bad_unknown_code.py"
    findings = analyze_source(path, path.read_text())
    codes = sorted(f.code for f in findings)
    # the RPR999 comment silences nothing: the RPR001 finding survives,
    # and the bogus code is reported on top
    assert codes == [META_CODE, "RPR001"]


def test_suppression_on_wrong_line_does_not_apply():
    source = "import time\n# repro: allow[RPR001]\nt = time.time()\n"
    findings = analyze_source("x.py", source)
    assert sorted(f.code for f in findings) == [META_CODE, "RPR001"]


def test_syntax_error_is_a_meta_finding():
    findings = analyze_source("broken.py", "def f(:\n")
    assert [f.code for f in findings] == [META_CODE]
    assert "does not parse" in findings[0].message


def test_duplicate_rule_codes_rejected():
    rules = default_rules()
    with pytest.raises(ValueError, match="duplicate"):
        Analyzer(rules + [rules[0]])


def test_iter_python_files_rejects_non_python():
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([FIXTURES / "does_not_exist.txt"]))


# ---------------------------------------------------------------------------
# 3b. reporters
# ---------------------------------------------------------------------------
def _sample_findings() -> list[Finding]:
    path = FIXTURES / "rpr006" / "bad_dropped.py"
    return analyze_source(path, path.read_text())


def test_json_round_trip():
    findings = _sample_findings()
    assert findings
    payload = render_json(findings)
    assert findings_from_json(payload) == findings
    doc = json.loads(payload)
    assert doc["schema"] == SCHEMA
    assert doc["count"] == len(findings)


def test_json_rejects_wrong_schema():
    with pytest.raises(ValueError, match="schema"):
        findings_from_json(json.dumps({"schema": "nope/9", "findings": []}))


def test_json_rejects_count_mismatch():
    doc = json.loads(render_json(_sample_findings()))
    doc["count"] += 1
    with pytest.raises(ValueError, match="count"):
        findings_from_json(json.dumps(doc))


def test_text_report_format():
    findings = _sample_findings()
    text = render_text(findings)
    lines = text.splitlines()
    assert lines[-1].endswith("findings")
    assert all(":RPR006 "[1:] in line for line in lines[:-1])
    assert render_text([]) == "0 findings"


# ---------------------------------------------------------------------------
# 3c. the CLI contract
# ---------------------------------------------------------------------------
def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )


def test_cli_clean_tree_exits_zero():
    proc = _run_cli(str(FIXTURES / "rpr006" / "good_consumed.py"))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_cli_findings_exit_one_json():
    proc = _run_cli("--format", "json", str(FIXTURES / "rpr006" / "bad_dropped.py"))
    assert proc.returncode == 1
    findings = findings_from_json(proc.stdout)
    assert findings and all(f.code == "RPR006" for f in findings)


def test_cli_output_file(tmp_path):
    out = tmp_path / "report.json"
    proc = _run_cli(
        "--format",
        "json",
        "--output",
        str(out),
        str(FIXTURES / "rpr007" / "bad_bare_except.py"),
    )
    assert proc.returncode == 1
    assert findings_from_json(out.read_text())


def test_cli_missing_path_exits_two():
    proc = _run_cli("no/such/path.txt")
    assert proc.returncode == 2
    assert "error:" in proc.stderr


def test_cli_explain_lists_all_rules():
    proc = _run_cli("--explain")
    assert proc.returncode == 0
    for rule in default_rules():
        assert rule.code in proc.stdout
    assert META_CODE in proc.stdout


# the same contract exercised in-process (the subprocess tests above
# pin the real entry point; these pin main() itself)
def test_main_in_process_clean(capsys):
    from repro.analysis.cli import main

    code = main([str(FIXTURES / "rpr006" / "good_consumed.py")])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_main_in_process_findings_json(capsys):
    from repro.analysis.cli import main

    code = main(["--format", "json", str(FIXTURES / "rpr006" / "bad_dropped.py")])
    assert code == 1
    findings = findings_from_json(capsys.readouterr().out)
    assert findings and all(f.code == "RPR006" for f in findings)


def test_main_in_process_output_file(tmp_path, capsys):
    from repro.analysis.cli import main

    out = tmp_path / "report.txt"
    code = main(
        ["--output", str(out), str(FIXTURES / "rpr007" / "bad_bare_except.py")]
    )
    assert code == 1
    assert capsys.readouterr().out == ""
    assert "RPR007" in out.read_text()


def test_main_in_process_missing_path(capsys):
    from repro.analysis.cli import main

    assert main(["no/such/path.txt"]) == 2
    assert "error:" in capsys.readouterr().err


def test_main_in_process_explain(capsys):
    from repro.analysis.cli import main

    assert main(["--explain"]) == 0
    out = capsys.readouterr().out
    assert all(rule.code in out for rule in default_rules())

"""RPR004: the model-attribute half only applies inside model
segments (causal/linear/trees/nn) — elsewhere a lambda attribute is
someone else's problem (e.g. ruff), not a pickling contract."""


class Helper:
    def __init__(self):
        self.f = lambda x: x  # no finding: not a model segment

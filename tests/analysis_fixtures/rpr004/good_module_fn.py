"""RPR004 good: module-level callables pickle fine."""

import functools


def work(r, scale=2):
    return r * scale


def fan_out(backend, rows):
    return [backend.submit(work, row) for row in rows]


def targeted(backend, shard, row):
    return backend.submit_to(shard, work, row)


def via_partial(backend, row, scale):
    # partial over a module-level function is picklable
    return backend.submit(functools.partial(work, scale=scale), row)

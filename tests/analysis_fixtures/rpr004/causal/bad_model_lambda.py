"""RPR004 bad (model segment): lambda-valued attribute on a model."""


class SLearner:
    def __init__(self, base):
        self.base = base
        self.transform = lambda x: x * 2.0  # finding: breaks pickling

"""RPR004 good (model segment): picklable model attributes."""


def _double(x):
    return x * 2.0


class SLearner:
    def __init__(self, base):
        self.base = base
        self.transform = _double  # module-level: pickles fine

    def apply(self, x):
        return self.transform(x)

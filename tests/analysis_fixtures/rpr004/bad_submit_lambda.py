"""RPR004 bad: unpicklable cargo shipped through submit/submit_to."""

import functools


def fan_out(backend, rows):
    rids = []
    for row in rows:
        rids.append(backend.submit(lambda r: r * 2, row))  # finding
    return rids


def targeted(backend, shard, row):
    return backend.submit_to(shard, lambda r: r + 1, row)  # finding


def closure(backend, rows, scale):
    def scaled(r):  # closes over `scale`
        return r * scale

    return [backend.submit(scaled, row) for row in rows]  # finding


def via_partial(backend, row):
    helper = lambda r: r - 1  # noqa: E731
    return backend.submit(functools.partial(helper, row))  # finding

"""Suppression fixtures: a real violation silenced by an audited
allow comment yields zero findings."""

import time


def profile() -> float:
    return time.perf_counter()  # repro: allow[RPR001]


def multi(backend, row):
    backend.submit(time.sleep, row)  # repro: allow[RPR001, RPR006]


def not_a_comment() -> str:
    # an allow-shaped *string* must never suppress anything
    return "# repro: allow[RPR001]"

"""A suppression naming a code no rule owns is reported under RPR000."""

import time


def profile() -> float:
    return time.perf_counter()  # repro: allow[RPR999]

"""A suppression that matches no finding is itself a finding (RPR000)
— stale allow comments cannot accumulate."""


def clean() -> int:
    return 1  # repro: allow[RPR001]

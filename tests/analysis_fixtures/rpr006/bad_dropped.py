"""RPR006 bad: submit results dropped on the floor — the pre-suppression
sharding.py dispatch shape."""

import numpy as np


def dispatch(engine, resolved, keys):
    if any(key is not None for key in keys):
        for row, key in zip(resolved, keys):
            engine.submit(row, key=key)  # finding
    else:
        engine.submit_batch(np.asarray(resolved))  # finding
    return engine.drain()


def fire_and_forget(backend, shard, row):
    backend.submit_to(shard, len, row)  # finding

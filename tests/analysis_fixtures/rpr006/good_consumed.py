"""RPR006 good: every submit result is stored, returned, or resolved."""


def stored(engine, rows):
    rids = [engine.submit(row) for row in rows]
    return rids


def returned(engine, row):
    return engine.submit(row)


def resolved(backend, row):
    out = backend.submit(len, row).result()
    return out


def assigned(engine, batch):
    rids = engine.submit_batch(batch)
    del rids

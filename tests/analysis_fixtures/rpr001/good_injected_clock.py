"""RPR001 good: components read time through an injected Clock, and
timestamp *formatting* is not wall-clock access."""

import time


class Component:
    def __init__(self, clock) -> None:
        self.clock = clock

    def now(self) -> float:
        return self.clock.now()

    def label(self, at: float) -> str:
        # formatting an already-captured instant is fine
        return time.strftime("%Y-%m-%d", time.gmtime(at))

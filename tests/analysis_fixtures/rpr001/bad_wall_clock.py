"""RPR001 bad: every flavour of direct wall-clock access."""

import datetime
import time
from time import sleep  # finding: banned import

from datetime import datetime as dt


def stamp() -> float:
    return time.time()  # finding


def tick() -> float:
    return time.monotonic()  # finding


def profile() -> float:
    return time.perf_counter()  # finding (the pre-fix tracing.py shape)


def nap() -> None:
    sleep(0.1)  # finding: name resolved through the from-import


def today() -> object:
    return dt.now()  # finding


def also_today() -> object:
    return datetime.datetime.utcnow()  # finding

"""RPR001 exempt path: ``runtime/clock.py`` is the one sanctioned
wall-clock reader, matched by path suffix."""

import time


class SystemClock:
    def now(self) -> float:
        return time.monotonic()  # no finding: exempt module

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)  # no finding: exempt module

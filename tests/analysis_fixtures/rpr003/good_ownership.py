"""RPR003 good: every sanctioned ownership shape."""


def with_managed(n: int):
    with ProcessBackend(n) as backend:
        return backend.submit(len, [1, 2])


def try_finally(n: int):
    backend = ProcessBackend(n)
    try:
        return backend.submit(len, [1, 2])
    finally:
        backend.shutdown()


def factory(n: int):
    # ownership transferred to the caller
    backend = ProcessBackend(n)
    return backend


def stored(obj, n: int) -> None:
    # ownership transferred to the object (its close path owns it)
    obj.backend = ProcessBackend(n)


def handed_off(n: int) -> None:
    # ownership transferred to the callee
    backend = ProcessBackend(n)
    register(backend)


def rebound(backend, parallel: bool):
    # the run_backend(...) rebind pattern: the parameter is replaced by
    # a (backend, owned) resolution, so the shutdown is on an owned one
    backend, owned = run_backend(backend, parallel)
    try:
        return backend.submit(len, [1, 2])
    finally:
        if owned:
            backend.shutdown()


def register(backend) -> None:
    pass


def run_backend(backend, parallel):
    return backend, False


class ProcessBackend:
    def __init__(self, n: int) -> None:
        self.n = n

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def submit(self, fn, *args):
        return fn(*args)

    def shutdown(self) -> None:
        pass

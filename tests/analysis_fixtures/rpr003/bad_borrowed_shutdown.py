"""RPR003 bad: shutting down a backend you merely borrowed."""


def run(rows, backend):
    out = [backend.submit(len, row) for row in rows]
    backend.shutdown()  # finding: borrower must not shut down
    return out


def tidy(pool) -> None:
    pool.close()  # finding: borrower must not close

"""RPR003 bad: shutdown exists but is not guaranteed on all paths."""


def risky(rows, n: int):
    backend = ThreadBackend(n)  # finding: shutdown not in a finally
    out = [backend.submit(len, row) for row in rows]  # may raise
    backend.shutdown()
    return out


class ThreadBackend:
    def __init__(self, n: int) -> None:
        self.n = n

    def submit(self, fn, *args):
        return fn(*args)

    def shutdown(self) -> None:
        pass

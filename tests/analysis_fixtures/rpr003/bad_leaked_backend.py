"""RPR003 bad: a constructed backend that never reaches shutdown."""


class ProcessBackend:
    def __init__(self, n: int) -> None:
        self.n = n

    def submit(self, fn, *args):
        return fn(*args)

    def shutdown(self) -> None:
        pass


def work(x: int) -> int:
    return x * 2


def leak(n: int) -> int:
    backend = ProcessBackend(n)  # finding: never shut down
    rid = backend.submit(work, 1)
    return rid


def leak_pool() -> None:
    pool = SharedTensorPool()  # finding: never closed
    pool.offer(b"x")


class SharedTensorPool:
    def offer(self, payload) -> None:
        pass

    def close(self) -> None:
        pass

"""RPR007 bad: bare except — banned everywhere, any segment."""


def risky(fn):
    try:
        return fn()
    except:  # finding: bare except  # noqa: E722
        return None

"""RPR007 good (serving segment): failures propagate or are recorded."""


def reap(ranges, record, dropped_counter):
    try:
        ranges.remove(record)
    except ValueError:
        dropped_counter.inc()


def route(future, fn):
    try:
        future.set_result(fn())
    except RuntimeError as exc:
        future.set_exception(exc)


def reraise(fn):
    try:
        return fn()
    except ValueError:
        raise

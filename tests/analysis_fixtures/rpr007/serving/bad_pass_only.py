"""RPR007 bad (serving segment): pass-only handlers swallow failures —
the pre-suppression engine.py/shm.py shapes."""


def reap(ranges, record):
    try:
        ranges.remove(record)
    except ValueError:  # finding: swallowed in a serving path
        pass


def unlink(segment):
    try:
        segment.unlink()
    except FileNotFoundError:  # finding: docstring body is still a no-op
        """already unlinked"""

"""RPR007: the pass-only-handler half is scoped to serving/runtime —
best-effort cleanup elsewhere may legitimately tolerate failure."""


def best_effort_rmtree(path, shutil):
    try:
        shutil.rmtree(path)
    except OSError:  # no finding: not a serving/runtime module
        pass

"""RPR002 good: seeded Generators and Generator methods."""

import numpy as np


def draw(seed: int, n: int):
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)


def spawn(rng: np.random.Generator, n: int):
    # Generator methods are fine — the discipline is about *global* state
    return rng.integers(0, 10, size=n)


def keyword_seeded(seed):
    return np.random.default_rng(seed=seed)

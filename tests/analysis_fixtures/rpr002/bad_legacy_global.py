"""RPR002 bad: legacy global-state numpy randomness."""

import numpy as np
from numpy.random import randint  # finding: banned import


def draw(n: int):
    return np.random.normal(size=n)  # finding


def reseed() -> None:
    np.random.seed(0)  # finding


def pick(n: int):
    return randint(0, n)


def legacy_state():
    return np.random.RandomState(7)  # finding

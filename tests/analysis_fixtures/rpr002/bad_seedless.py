"""RPR002 bad: seedless default_rng — fresh entropy outside utils/rng."""

import numpy as np
from numpy.random import default_rng


def fresh():
    return np.random.default_rng()  # finding (the pre-suppression rng.py shape)


def explicit_none():
    return np.random.default_rng(None)  # finding


def keyword_none():
    return default_rng(seed=None)  # finding

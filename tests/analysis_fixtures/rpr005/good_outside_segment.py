"""RPR005 only applies to serving/runtime/ab segments — the obs
package itself (and model code) may talk to the registry freely."""


def span(metrics, name):
    return metrics.histogram(f"span.{name}")  # no finding: out of scope

"""RPR005 bad (serving segment): registry lookups on a per-event path
— the exact pre-fix AutoPromoter._event shape."""


class Promoter:
    def __init__(self, metrics):
        self.metrics = metrics
        self.events = []

    def _event(self, kind, version):
        self.events.append((kind, version))
        self.metrics.counter(f"promoter.{kind}").inc()  # finding

    def observe(self, value):
        self.metrics.histogram("promoter.values").observe(value)  # finding

    def rebalance(self):
        self.metrics.gauge("promoter.split").set(0.5)  # finding

    def attach(self, registry):
        registry.adopt(self.events)  # finding: adopt outside __init__

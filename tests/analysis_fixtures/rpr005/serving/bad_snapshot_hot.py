"""RPR005 bad (serving segment): Snapshot built on per-request paths."""


class Engine:
    def __init__(self, metrics):
        self.metrics = metrics

    def submit(self, row):
        snap = self.metrics.snapshot()  # finding: snapshot per request
        return row, snap

    def observe(self, rid, outcome):
        return Snapshot(rid, outcome)  # finding: Snapshot ctor per request


class Snapshot:
    def __init__(self, rid, outcome):
        self.rid = rid
        self.outcome = outcome

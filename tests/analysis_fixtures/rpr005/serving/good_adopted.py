"""RPR005 good (serving segment): metrics pre-adopted at construction;
snapshots only at boundaries."""

EVENT_KINDS = ("start", "promote", "kill")


class Promoter:
    def __init__(self, metrics):
        self.metrics = metrics
        self._c_observations = metrics.counter("promoter.observations")
        self._g_split = metrics.gauge("promoter.traffic_split")
        self._c_events = {
            kind: metrics.counter(f"promoter.{kind}") for kind in EVENT_KINDS
        }

    def observe(self, value):
        # hot path touches only owned objects
        self._c_observations.inc()
        self._g_split.set(value)

    def _event(self, kind):
        self._c_events[kind].inc()

    def day_boundary(self):
        # snapshots belong at day/merge boundaries, not request paths
        return self.metrics.snapshot()

"""Tests for the generic supervised losses."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import sigmoid
from repro.nn.gradcheck import numeric_gradient
from repro.nn.losses import BinaryCrossEntropy, MeanSquaredError


class TestMeanSquaredError:
    def test_zero_at_perfect_fit(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0], [2.0]])
        value, grad = loss(pred, pred.copy())
        assert value == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(pred))

    def test_known_value(self):
        loss = MeanSquaredError()
        value, _ = loss(np.array([[2.0]]), np.array([[0.0]]))
        assert value == pytest.approx(4.0)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=(6, 2))
        target = rng.normal(size=(6, 2))
        loss = MeanSquaredError()
        _, grad = loss(pred, target)
        numeric = numeric_gradient(lambda p: loss(p, target)[0], pred.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_sample_weight_zero_removes_sample(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0], [100.0]])
        target = np.array([[1.0], [0.0]])
        value, grad = loss(pred, target, sample_weight=np.array([1.0, 0.0]))
        assert value == 0.0
        assert grad[1, 0] == 0.0

    def test_weighted_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        pred = rng.normal(size=(5, 1))
        target = rng.normal(size=(5, 1))
        weights = rng.random(5) + 0.1
        loss = MeanSquaredError()
        _, grad = loss(pred, target, sample_weight=weights)
        numeric = numeric_gradient(
            lambda p: loss(p, target, sample_weight=weights)[0], pred.copy()
        )
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_zero_weights_rejected(self):
        loss = MeanSquaredError()
        with pytest.raises(ValueError, match="positive sum"):
            loss(np.ones((2, 1)), np.ones((2, 1)), sample_weight=np.zeros(2))


class TestBinaryCrossEntropy:
    def test_confident_correct_is_near_zero(self):
        loss = BinaryCrossEntropy()
        value, _ = loss(np.array([[20.0]]), np.array([[1.0]]))
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_confident_wrong_is_large(self):
        loss = BinaryCrossEntropy()
        value, _ = loss(np.array([[20.0]]), np.array([[0.0]]))
        assert value > 10.0

    def test_stable_at_extreme_logits(self):
        loss = BinaryCrossEntropy()
        for z in (-1e4, 1e4):
            value, grad = loss(np.array([[z]]), np.array([[1.0]]))
            assert np.isfinite(value)
            assert np.all(np.isfinite(grad))

    def test_gradient_is_sigmoid_minus_target_over_n(self):
        rng = np.random.default_rng(2)
        logits = rng.normal(size=(8, 1))
        target = rng.integers(0, 2, size=(8, 1)).astype(float)
        _, grad = BinaryCrossEntropy()(logits, target)
        np.testing.assert_allclose(grad, (sigmoid(logits) - target) / logits.size)

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(5, 1))
        target = rng.integers(0, 2, size=(5, 1)).astype(float)
        loss = BinaryCrossEntropy()
        _, grad = loss(logits, target)
        numeric = numeric_gradient(lambda z: loss(z, target)[0], logits.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_soft_targets_accepted(self):
        loss = BinaryCrossEntropy()
        value, _ = loss(np.array([[0.0]]), np.array([[0.5]]))
        assert value == pytest.approx(np.log(2.0))

    def test_out_of_range_target_rejected(self):
        loss = BinaryCrossEntropy()
        with pytest.raises(ValueError, match="lie in"):
            loss(np.array([[0.0]]), np.array([[1.5]]))

    @given(st.floats(min_value=-20, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_nonnegative(self, logit):
        loss = BinaryCrossEntropy()
        for target in (0.0, 1.0):
            value, _ = loss(np.array([[logit]]), np.array([[target]]))
            assert value >= -1e-12

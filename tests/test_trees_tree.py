"""Tests for repro.trees.tree (CART)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.tree import DecisionTreeRegressor, best_sse_split


class TestBestSseSplit:
    def test_perfect_step(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        thr, gain = best_sse_split(x, y, min_samples_leaf=1)
        assert 1.0 < thr < 2.0
        assert gain == pytest.approx(100.0)  # SSE drops from 100 to 0

    def test_no_split_on_constant_feature(self):
        x = np.ones(10)
        y = np.arange(10.0)
        _, gain = best_sse_split(x, y, min_samples_leaf=1)
        assert gain == -np.inf

    def test_min_samples_leaf_respected(self):
        x = np.arange(6.0)
        y = np.array([0, 0, 0, 0, 0, 100.0])
        thr, gain = best_sse_split(x, y, min_samples_leaf=2)
        # the best single-point split (isolating the outlier) is forbidden
        assert gain > -np.inf
        left = np.sum(x <= thr)
        assert 2 <= left <= 4

    def test_too_few_samples(self):
        _, gain = best_sse_split(np.array([1.0, 2.0]), np.array([0.0, 1.0]), min_samples_leaf=2)
        assert gain == -np.inf

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=4,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_gain_never_negative_when_valid(self, values):
        y = np.asarray(values)
        x = np.arange(len(y), dtype=float)
        _, gain = best_sse_split(x, y, min_samples_leaf=1)
        assert gain == -np.inf or gain >= -1e-6


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(400, 2))
        y = np.where(x[:, 0] > 0.2, 5.0, -5.0)
        tree = DecisionTreeRegressor(max_depth=3).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), y)

    def test_max_depth_zero_is_mean(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        y = np.random.default_rng(1).normal(size=50)
        tree = DecisionTreeRegressor(max_depth=0).fit(x, y)
        np.testing.assert_allclose(tree.predict(x), np.full(50, y.mean()))

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 3))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(min_samples_leaf=20).fit(x, y)
        leaves, counts = np.unique(tree.apply(x), return_counts=True)
        assert counts.min() >= 20

    def test_prediction_interpolates_mean(self):
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([1.0, 3.0, 10.0, 20.0])
        tree = DecisionTreeRegressor(max_depth=1).fit(x, y)
        pred = tree.predict([[0.0], [1.0]])
        assert pred[0] == pytest.approx(2.0)
        assert pred[1] == pytest.approx(15.0)

    def test_apply_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTreeRegressor().apply(np.ones((1, 2)))

    def test_feature_count_mismatch(self):
        tree = DecisionTreeRegressor(max_depth=2).fit(np.ones((10, 3)), np.arange(10.0))
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.ones((1, 2)))

    def test_max_features_subsampling_runs(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 8))
        y = x[:, 0] * 2
        tree = DecisionTreeRegressor(max_depth=4, max_features="sqrt", random_state=0)
        tree.fit(x, y)
        assert tree.n_nodes >= 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=-1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_reduces_mse_vs_mean_on_smooth_target(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-2, 2, size=(500, 2))
        y = np.sin(x[:, 0]) + 0.1 * rng.normal(size=500)
        tree = DecisionTreeRegressor(max_depth=6, min_samples_leaf=5).fit(x, y)
        mse_tree = float(np.mean((tree.predict(x) - y) ** 2))
        mse_mean = float(np.var(y))
        assert mse_tree < 0.3 * mse_mean

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_deeper_trees_fit_no_worse_in_sample(self, depth):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(200, 2))
        y = rng.normal(size=200)
        shallow = DecisionTreeRegressor(max_depth=depth).fit(x, y)
        deep = DecisionTreeRegressor(max_depth=depth + 1).fit(x, y)
        mse_shallow = float(np.mean((shallow.predict(x) - y) ** 2))
        mse_deep = float(np.mean((deep.predict(x) - y) ** 2))
        assert mse_deep <= mse_shallow + 1e-9

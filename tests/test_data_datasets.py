"""Tests for the three dataset analogs (criteo / meituan / alibaba)."""

import numpy as np
import pytest

from repro.data import alibaba_lift, criteo_uplift_v2, meituan_lift


class TestCriteo:
    def test_shape_matches_paper(self):
        data = criteo_uplift_v2(2000, random_state=0)
        assert data.n == 2000
        assert data.n_features == 12  # the paper's 12 feature variables

    def test_treated_fraction_085(self):
        data = criteo_uplift_v2(20000, random_state=0)
        assert data.t.mean() == pytest.approx(0.85, abs=0.02)

    def test_visit_more_common_than_conversion(self):
        """Visit is the cost outcome, conversion the revenue outcome."""
        data = criteo_uplift_v2(20000, random_state=0)
        assert data.y_c.mean() > data.y_r.mean()

    def test_deterministic(self):
        a = criteo_uplift_v2(500, random_state=3)
        b = criteo_uplift_v2(500, random_state=3)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y_r, b.y_r)

    def test_minimum_size(self):
        with pytest.raises(ValueError, match="n must be"):
            criteo_uplift_v2(5)

    def test_summary(self):
        summary = criteo_uplift_v2(500, random_state=0).summary()
        assert summary["name"] == "criteo"
        assert summary["n_features"] == 12


class TestMeituan:
    def test_99_features(self):
        data = meituan_lift(3000, random_state=0)
        assert data.n_features == 99  # the paper's 99 attributes

    def test_binarisation_keeps_two_of_five_levels(self):
        data = meituan_lift(10000, random_state=0)
        # uniform 5-level assignment keeps ~40% of rows
        assert 0.3 * 10000 < data.n < 0.5 * 10000
        # the two kept arms are roughly balanced
        assert data.t.mean() == pytest.approx(0.5, abs=0.05)

    def test_sparse_attribute_block_is_binary(self):
        data = meituan_lift(2000, random_state=0)
        sparse_block = data.x[:, 40:]
        assert set(np.unique(sparse_block)) <= {0.0, 1.0}

    def test_invalid_levels(self):
        with pytest.raises(ValueError, match="selected_levels"):
            meituan_lift(1000, selected_levels=(3, 1))

    def test_deterministic(self):
        a = meituan_lift(1000, random_state=9)
        b = meituan_lift(1000, random_state=9)
        np.testing.assert_array_equal(a.x, b.x)


class TestAlibaba:
    def test_feature_layout(self):
        data = alibaba_lift(2000, random_state=0)
        # 25 discrete + 9 multivalued-count columns
        assert data.n_features == 34
        assert data.feature_names[0] == "disc0"
        assert data.feature_names[-1] == "multi8"

    def test_balanced_treatment(self):
        data = alibaba_lift(10000, random_state=0)
        assert data.t.mean() == pytest.approx(0.5, abs=0.03)

    def test_exposure_more_common_than_conversion(self):
        data = alibaba_lift(20000, random_state=0)
        assert data.y_c.mean() > data.y_r.mean()

    def test_standardised_columns(self):
        data = alibaba_lift(5000, random_state=0)
        means = data.x.mean(axis=0)
        assert np.all(np.abs(means) < 0.3)


@pytest.mark.parametrize("generator", [criteo_uplift_v2, meituan_lift, alibaba_lift])
class TestSharedInvariants:
    def test_paper_assumptions_hold(self, generator):
        data = generator(3000, random_state=1)
        assert np.all(data.roi > 0) and np.all(data.roi < 1)
        assert np.all(data.tau_c > 0) and np.all(data.tau_r > 0)
        np.testing.assert_allclose(data.roi, data.tau_r / data.tau_c)

    def test_subset_and_split(self, generator):
        data = generator(3000, random_state=1)
        sub = data.subset(np.arange(10))
        assert sub.n == 10
        parts = data.split((0.5, 0.25, 0.25), random_state=0)
        assert sum(p.n for p in parts) == pytest.approx(data.n, abs=3)

    def test_sample_fraction(self, generator):
        data = generator(3000, random_state=1)
        small = data.sample_fraction(0.15, random_state=0)
        assert small.n == pytest.approx(0.15 * data.n, abs=2)

"""Tests for the online serving subsystem (``repro.serving``)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ab.platform import Platform
from repro.core.roi_star import bisect_monotone
from repro.runtime import ManualClock, SerialBackend, ThreadBackend
from repro.serving.engine import ScoringEngine
from repro.serving.pacing import BudgetPacer, MultiDayPacer
from repro.serving.policy import ConformalGatedPolicy
from repro.serving.registry import ModelRegistry
from repro.serving.simulator import TrafficReplay


class LinearROI:
    """Deterministic stub scorer: clipped linear projection of x."""

    def __init__(self, w: np.ndarray, calls: list | None = None) -> None:
        self.w = np.asarray(w, dtype=float)
        self.calls = calls if calls is not None else []

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.calls.append(x.shape[0])
        return np.clip(x @ self.w, 1e-6, 1.0 - 1e-6)


class IntervalROI(LinearROI):
    """Stub with a conformal-style interval (lower = 0.8 * point)."""

    def predict_interval(self, x):
        point = self.predict_roi(x)
        return 0.8 * point, np.minimum(1.2 * point, 1.0)


@pytest.fixture
def stub_model():
    rng = np.random.default_rng(3)
    return LinearROI(rng.normal(size=12) * 0.05)


@pytest.fixture
def platform():
    return Platform(dataset="criteo", random_state=0)


# ---------------------------------------------------------------------------
# bisect_monotone (the reusable threshold search)
# ---------------------------------------------------------------------------
class TestBisectMonotone:
    def test_finds_root(self):
        root = bisect_monotone(lambda v: v - 0.3, 0.0, 1.0, eps=1e-6)
        assert root == pytest.approx(0.3, abs=1e-5)

    def test_clamps_to_endpoint(self):
        assert bisect_monotone(lambda v: v + 5.0, 0.0, 1.0) < 1e-2
        assert bisect_monotone(lambda v: v - 5.0, 0.0, 1.0) > 1.0 - 1e-2

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="eps"):
            bisect_monotone(lambda v: v, 0.0, 1.0, eps=0.0)
        with pytest.raises(ValueError, match="lo < hi"):
            bisect_monotone(lambda v: v, 1.0, 0.0)


# ---------------------------------------------------------------------------
# ModelRegistry
# ---------------------------------------------------------------------------
class TestModelRegistry:
    def test_first_model_becomes_champion(self, stub_model):
        reg = ModelRegistry()
        v = reg.register(stub_model)
        assert reg.champion.version == v
        assert reg.challenger is None

    def test_second_model_becomes_challenger(self, stub_model):
        reg = ModelRegistry()
        reg.register(stub_model)
        v2 = reg.register(LinearROI(np.zeros(12)))
        assert reg.challenger is not None and reg.challenger.version == v2

    def test_promote_and_rollback(self, stub_model):
        reg = ModelRegistry()
        v1 = reg.register(stub_model)
        v2 = reg.register(LinearROI(np.zeros(12)))
        assert reg.promote() == v2
        assert reg.champion.version == v2
        assert reg.challenger is None
        assert reg.rollback() == v1
        assert reg.champion.version == v1

    def test_register_promote_true_supports_rollback(self, stub_model):
        """The emergency-hotfix path records the displaced champion."""
        reg = ModelRegistry()
        v1 = reg.register(stub_model)
        v2 = reg.register(LinearROI(np.zeros(12)), promote=True)
        assert reg.champion.version == v2
        assert reg.rollback() == v1

    def test_rollback_restores_most_recent_champion(self, stub_model):
        reg = ModelRegistry()
        reg.register(stub_model)  # v1
        v2 = reg.register(LinearROI(np.zeros(12)))
        reg.promote()  # v2 champion, previous = v1
        reg.register(LinearROI(np.ones(12)), promote=True)  # v3 displaces v2
        assert reg.rollback() == v2  # v2, not the two-generations-old v1

    def test_rollback_without_promote_raises(self, stub_model):
        reg = ModelRegistry()
        reg.register(stub_model)
        with pytest.raises(RuntimeError, match="roll back"):
            reg.rollback()

    def test_route_requires_champion(self):
        with pytest.raises(RuntimeError, match="champion"):
            ModelRegistry().route()

    def test_keyed_routing_is_deterministic(self, stub_model):
        reg = ModelRegistry(traffic_split=0.5, random_state=0)
        reg.register(stub_model)
        reg.register(LinearROI(np.zeros(12)))
        picks = {key: reg.route(key).version for key in range(50)}
        again = {key: reg.route(key).version for key in range(50)}
        assert picks == again
        assert len(set(picks.values())) == 2  # both versions see traffic

    def test_traffic_split_zero_disables_challenger(self, stub_model):
        reg = ModelRegistry(traffic_split=0.0, random_state=0)
        reg.register(stub_model)
        reg.register(LinearROI(np.zeros(12)))
        versions = {reg.route().version for _ in range(50)}
        assert versions == {reg.champion.version}

    def test_rejects_model_without_predict_roi(self):
        with pytest.raises(TypeError, match="predict_roi"):
            ModelRegistry().register(object())

    def test_invalid_split(self):
        with pytest.raises(ValueError, match="traffic_split"):
            ModelRegistry(traffic_split=1.5)

    # -- lifecycle invariant: a champion transition archives any staged
    # -- challenger unless that challenger is itself being promoted
    def test_hotfix_register_archives_stale_challenger(self, stub_model):
        """Regression: ``register(promote=True)`` used to leave the
        staged challenger silently taking split traffic against a
        brand-new champion it was never compared to."""
        reg = ModelRegistry(traffic_split=0.5, random_state=0)
        reg.register(stub_model)
        v2 = reg.register(LinearROI(np.zeros(12)))  # staged challenger
        v3 = reg.register(LinearROI(np.ones(12)), promote=True)  # hotfix
        assert reg.champion.version == v3
        assert reg.challenger is None
        assert reg.get(v2).stage == "archived"
        # and no keyed traffic leaks to the stale challenger
        assert all(reg.route(k).version == v3 for k in range(100))

    def test_promote_archived_id_archives_stale_challenger(self, stub_model):
        """Regression: ``promote(<archived id>)`` (manual un-rollback)
        with a *different* challenger staged must archive it too."""
        reg = ModelRegistry(traffic_split=0.5, random_state=0)
        v1 = reg.register(stub_model)
        reg.register(LinearROI(np.zeros(12)))
        reg.promote()  # v2 champion, v1 archived
        v3 = reg.register(LinearROI(np.ones(12)))  # new challenger
        assert reg.promote(v1) == v1  # re-promote the archived v1
        assert reg.champion.version == v1
        assert reg.challenger is None
        assert reg.get(v3).stage == "archived"
        assert all(reg.route(k).version == v1 for k in range(100))

    def test_rollback_archives_stale_challenger(self, stub_model):
        reg = ModelRegistry()
        reg.register(stub_model)
        v2 = reg.register(LinearROI(np.zeros(12)))
        reg.promote()  # v2 champion
        v3 = reg.register(LinearROI(np.ones(12)))  # challenger vs v2
        reg.rollback()  # v2's promotion undone -> v3's baseline is gone
        assert reg.challenger is None
        assert reg.get(v3).stage == "archived"

    def test_demote_unstages_challenger(self, stub_model):
        reg = ModelRegistry(traffic_split=0.5, random_state=0)
        v1 = reg.register(stub_model)
        v2 = reg.register(LinearROI(np.zeros(12)))
        assert reg.demote() == v2
        assert reg.challenger is None
        assert reg.get(v2).stage == "archived"
        assert reg.champion.version == v1  # champion untouched
        with pytest.raises(ValueError, match="challenger"):
            reg.demote()
        with pytest.raises(ValueError, match="challenger"):
            reg.demote(v1)  # the champion is not demotable

    def test_small_split_routes_keyed_traffic(self, stub_model):
        """Regression: crc32 % 10_000 bucketing quantised any
        ``traffic_split`` below 1e-4 up to bucket zero's 1e-4, so a
        cautious 1e-5 first ramp step routed ~10x the intended keyed
        traffic.  The 64-bit bucket space resolves it."""
        reg = ModelRegistry(traffic_split=1e-5, random_state=0)
        reg.register(stub_model)
        v2 = reg.register(LinearROI(np.zeros(12)))
        n = 300_000
        hits = sum(reg.route(k).version == v2 for k in range(n))
        # deterministic under the fixed hash; expectation n * 1e-5 = 3.
        # The old bucketing routed ~n * 1e-4 = 30 keys here.
        assert 1 <= hits <= 12

    def test_per_version_accounting_excludes_cache_hits(self, rng):
        """Regression: ``ModelVersion.requests`` used to count cache-hit
        requests the model never scored.  Invariant: ``requests`` =
        rows the model scored, ``cache_hits`` = cache serves,
        ``served`` = their sum = all requests answered."""
        calls: list[int] = []
        model = LinearROI(np.ones(6), calls=calls)
        engine = ScoringEngine(model, batch_size=4, cache_size=64)
        rows = rng.normal(size=(4, 6))
        for row in rows:
            engine.submit(row)  # one batch-full flush: 4 scored rows
        for row in rows[:3]:
            engine.submit(row)  # cache hits
        version = engine.registry.champion
        assert version.requests == 4  # only what the model scored
        assert version.cache_hits == 3
        assert version.served == 7
        assert sum(calls) == 4

    def test_outcome_ledger_moments_match_numpy(self):
        from repro.serving.registry import OutcomeLedger

        gen = np.random.default_rng(0)
        y_r, y_c = gen.random(60), gen.random(60) * 0.5
        tr = gen.random(60) < 0.5
        ledger = OutcomeLedger()
        for t, r, c in zip(tr, y_r, y_c):
            ledger.record(bool(t), float(r), float(c))
        assert ledger.n == 60
        assert ledger.n_treated == int(tr.sum())
        assert ledger.spend == pytest.approx(y_c.sum())
        assert ledger.revenue == pytest.approx(y_r.sum())
        mean, var, n = ledger.moments("net")
        assert n == 60
        assert mean == pytest.approx((y_r - y_c).mean())
        assert var == pytest.approx((y_r - y_c).var(ddof=1))
        mean_r, var_r, _ = ledger.moments("revenue")
        assert mean_r == pytest.approx(y_r.mean())
        assert var_r == pytest.approx(y_r.var(ddof=1))
        with pytest.raises(ValueError, match="metric"):
            ledger.moments("clicks")
        ledger.reset()
        assert ledger.n == 0
        assert ledger.moments("net") == (0.0, 0.0, 0)


# ---------------------------------------------------------------------------
# ScoringEngine
# ---------------------------------------------------------------------------
class TestScoringEngine:
    def test_matches_direct_model_call(self, stub_model, rng):
        x = rng.normal(size=(40, 12))
        engine = ScoringEngine(stub_model, batch_size=8, cache_size=0)
        got = np.array([engine.score(row) for row in x])
        np.testing.assert_allclose(got, stub_model.predict_roi(x), rtol=1e-12)

    def test_microbatching_one_model_call_per_flush(self, rng):
        calls: list[int] = []
        model = LinearROI(np.ones(5), calls=calls)
        engine = ScoringEngine(model, batch_size=16, cache_size=0)
        rows = rng.normal(size=(16, 5))
        ids = [engine.submit(row) for row in rows]
        assert calls == [16]  # one vectorised call at the auto-flush
        assert all(engine.has_result(rid) for rid in ids)

    def test_batch_size_one_is_synchronous(self, stub_model, rng):
        engine = ScoringEngine(stub_model, batch_size=1, cache_size=0)
        rid = engine.submit(rng.normal(size=12))
        assert engine.has_result(rid)  # flushed immediately
        assert engine.n_pending == 0

    def test_cache_hit_path(self, rng):
        calls: list[int] = []
        model = LinearROI(np.ones(6), calls=calls)
        engine = ScoringEngine(model, batch_size=1, cache_size=64)
        row = rng.normal(size=6)
        first = engine.score(row)
        second = engine.score(row)
        assert first == second
        assert engine.stats["cache_hits"] == 1
        assert sum(calls) == 1  # second request never reached the model
        assert engine.cache_hit_rate == pytest.approx(0.5)

    def test_cache_evicts_lru(self, stub_model, rng):
        engine = ScoringEngine(stub_model, batch_size=1, cache_size=2)
        rows = rng.normal(size=(3, 12))
        for row in rows:
            engine.score(row)
        engine.score(rows[0])  # evicted by rows[2] -> miss
        assert engine.stats["cache_hits"] == 0

    def test_take_pops_and_unknown_raises(self, stub_model, rng):
        engine = ScoringEngine(stub_model, batch_size=1)
        rid = engine.submit(rng.normal(size=12))
        engine.take(rid)
        with pytest.raises(KeyError):
            engine.take(rid)

    def test_routes_through_challenger(self, rng):
        reg = ModelRegistry(traffic_split=1.0, random_state=0)
        reg.register(LinearROI(np.zeros(4)))  # champion scores ~0
        reg.register(LinearROI(np.ones(4) * 10))  # challenger saturates
        engine = ScoringEngine(reg, batch_size=1, cache_size=0)
        score = engine.score(np.ones(4))
        assert score == pytest.approx(1.0 - 1e-6)  # served by challenger

    def test_promotion_switches_serving(self, rng):
        reg = ModelRegistry(traffic_split=0.0, random_state=0)
        reg.register(LinearROI(np.zeros(4)))
        reg.register(LinearROI(np.ones(4) * 10))
        engine = ScoringEngine(reg, batch_size=1, cache_size=0)
        before = engine.score(np.ones(4))
        reg.promote()
        after = engine.score(np.ones(4))
        assert before == pytest.approx(1e-6)
        assert after == pytest.approx(1.0 - 1e-6)

    def test_conformal_policy_scores_lower_bound(self, rng):
        model = IntervalROI(np.ones(3) * 0.1)
        x = np.abs(rng.normal(size=(5, 3)))
        engine = ScoringEngine(model, policy=ConformalGatedPolicy(), batch_size=1)
        got = np.array([engine.score(row) for row in x])
        np.testing.assert_allclose(got, model.predict_interval(x)[0], rtol=1e-12)

    def test_conformal_policy_fallback_shrinks(self, stub_model, rng):
        x = rng.normal(size=(4, 12))
        policy = ConformalGatedPolicy(fallback_shrink=0.5)
        np.testing.assert_allclose(
            policy.score_batch(stub_model, x),
            0.5 * stub_model.predict_roi(x),
            rtol=1e-12,
        )

    def test_failed_flush_leaves_engine_consistent(self, stub_model, rng):
        """A raising model drops its batch but does not wedge the buffer."""

        class Flaky:
            def __init__(self):
                self.fail_next = True

            def predict_roi(self, x):
                if self.fail_next:
                    self.fail_next = False
                    raise RuntimeError("model backend down")
                return np.zeros(np.atleast_2d(x).shape[0])

        engine = ScoringEngine(Flaky(), batch_size=4, cache_size=0)
        rows = rng.normal(size=(4, 3))
        for row in rows[:3]:
            engine.submit(row)
        with pytest.raises(RuntimeError, match="backend down"):
            engine.submit(rows[3])  # auto-flush hits the failure
        assert engine.n_pending == 0  # failed batch dropped, not retried
        assert engine.score(rows[0]) == 0.0  # engine still serves

    def test_successive_challengers_get_different_user_slices(self, stub_model):
        """The routing hash is salted per challenger version."""
        reg = ModelRegistry(traffic_split=0.5, random_state=0)
        reg.register(stub_model)
        reg.register(LinearROI(np.zeros(12)))  # challenger v2
        in_v2 = {k for k in range(200) if reg.route(k).version == 2}
        reg.promote()
        reg.register(LinearROI(np.ones(12)))  # challenger v3
        in_v3 = {k for k in range(200) if reg.route(k).version == 3}
        assert in_v2 != in_v3  # not the same fixed user slice every time

    def test_invalid_params(self, stub_model):
        with pytest.raises(ValueError, match="batch_size"):
            ScoringEngine(stub_model, batch_size=0)
        with pytest.raises(ValueError, match="cache_size"):
            ScoringEngine(stub_model, cache_size=-1)
        with pytest.raises(ValueError, match="max_latency_ms"):
            ScoringEngine(stub_model, max_latency_ms=0.0)

    def test_serial_pinned_behaviour(self, rng):
        """The pre-runtime engine spec, pinned: on the default serial
        backend, a mixed stream (batch flushes, cache hits, manual
        tail flush) produces exactly the direct model scores and
        exactly these stats — the refactor must be bit-invisible."""
        calls: list[int] = []
        model = LinearROI(np.ones(6) * 0.04, calls=calls)
        engine = ScoringEngine(model, batch_size=4, cache_size=64)
        unique = rng.normal(size=(6, 6))
        stream = np.concatenate([unique, unique[:4]])  # 4 repeats at the tail
        ids = [engine.submit(row) for row in stream]
        engine.flush()
        got = np.array([engine.take(rid) for rid in ids])
        expect = model.predict_roi(np.vstack([unique, unique[:4]]))
        np.testing.assert_allclose(got, expect, rtol=1e-12)
        # rows 0-3 auto-flush (batch_full); rows 4-5 wait; repeats of
        # 0-3 hit the cache; the manual flush scores the remainder
        assert calls[:-1] == [4, 2]  # one vectorised call per flush (+ expect calc)
        assert engine.stats["requests"] == 10
        assert engine.stats["cache_hits"] == 4
        assert engine.stats["cache_misses"] == 6
        assert engine.stats["flushes"] == 2
        assert engine.stats["flush_batch_full"] == 1
        assert engine.stats["flush_manual"] == 1
        assert engine.stats["flush_deadline"] == 0
        assert engine.stats["model_calls"] == 2
        assert engine.stats["rows_scored"] == 6
        assert engine.n_pending == 0 and engine.n_inflight == 0

    def test_failing_batch_leaves_other_versions_pending(self, rng):
        """Pre-runtime exception semantics, pinned: when one version's
        batch raises during a flush, batches of *other* versions must
        stay pending and their models must not have been called."""

        class Boom:
            def predict_roi(self, x):
                raise RuntimeError("version A down")

        calls: list[int] = []
        healthy = LinearROI(np.zeros(4), calls=calls)
        reg = ModelRegistry(traffic_split=0.5, random_state=0)
        reg.register(healthy)  # v1 champion
        reg.register(Boom())  # v2 challenger on half the keys
        key_healthy = next(k for k in range(100) if reg.route(k).version == 1)
        key_boom = next(k for k in range(100) if reg.route(k).version == 2)
        engine = ScoringEngine(reg, batch_size=100, cache_size=0)
        engine.submit(rng.normal(size=4), key=key_healthy)
        engine.submit(rng.normal(size=4), key=key_boom)
        assert engine.n_pending == 2
        with pytest.raises(RuntimeError, match="version A down"):
            engine.flush()
        # exactly one batch was dropped; the other is still pending and
        # its model untouched — same as before the runtime refactor
        assert engine.n_pending == 1
        assert calls == []
        engine.flush()  # the healthy batch scores on the next flush
        assert calls == [1]
        assert engine.n_pending == 0

    def test_latency_log_is_bounded(self, stub_model, rng):
        engine = ScoringEngine(
            stub_model, batch_size=1, cache_size=0,
            clock=ManualClock(), latency_log_size=50,
        )
        for row in rng.normal(size=(200, 12)):
            engine.submit(row)
        assert len(engine.latencies) <= 100  # 2x cap before compaction
        assert engine.latencies_dropped + len(engine.latencies) == 200
        assert engine._submitted_at == {}  # every stamp consumed

    def test_score_count_mismatch_does_not_leak_stamps(self, rng):
        class WrongShape:
            def predict_roi(self, x):
                return np.zeros(np.atleast_2d(x).shape[0] + 1)

        engine = ScoringEngine(
            WrongShape(), batch_size=2, cache_size=0, clock=ManualClock()
        )
        engine.submit(rng.normal(size=3))
        with pytest.raises(ValueError, match="scores"):
            engine.submit(rng.normal(size=3))  # auto-flush hits the mismatch
        assert engine._submitted_at == {}  # dropped batch forgot its stamps

    def test_version_of_attributes_scored_and_cached_requests(self, rng):
        """Outcome attribution needs the version whose score serves each
        request — including cache hits, whose cached score *is* that
        version's decision."""
        reg = ModelRegistry(traffic_split=1.0, random_state=0)
        reg.register(LinearROI(np.zeros(4)))
        reg.register(LinearROI(np.ones(4)))  # challenger takes everything
        engine = ScoringEngine(reg, batch_size=1, cache_size=16)
        row = rng.normal(size=4)
        rid = engine.submit(row)
        assert engine.version_of(rid) == 2
        engine.take(rid)
        with pytest.raises(KeyError):
            engine.version_of(rid)  # attribution released at take
        rid2 = engine.submit(row)  # cache hit: still version 2's score
        assert engine.version_of(rid2) == 2
        with pytest.raises(KeyError):
            engine.version_of(10_000)  # unknown id

    def test_score_batch_raising_model_scores_no_requests(self, rng):
        """``requests`` counts what the model actually scored — a
        raising model in the offline-parity path scored nothing."""

        class Boom:
            def predict_roi(self, x):
                raise RuntimeError("down")

        engine = ScoringEngine(Boom(), batch_size=4, cache_size=0)
        with pytest.raises(RuntimeError, match="down"):
            engine.score_batch(rng.normal(size=(5, 3)))
        assert engine.registry.champion.requests == 0

    def test_version_of_forgotten_for_dropped_batches(self, rng):
        class Boom:
            def predict_roi(self, x):
                raise RuntimeError("down")

        engine = ScoringEngine(Boom(), batch_size=2, cache_size=0)
        rid = engine.submit(rng.normal(size=3))
        with pytest.raises(RuntimeError, match="down"):
            engine.submit(rng.normal(size=3))  # auto-flush fails
        with pytest.raises(KeyError):
            engine.version_of(rid)  # dropped with its batch
        assert engine._version_by_rid == {}

    def test_explicit_serial_backend_matches_default(self, stub_model, rng):
        x = rng.normal(size=(20, 12))
        default = ScoringEngine(stub_model, batch_size=8, cache_size=0)
        explicit = ScoringEngine(
            stub_model, batch_size=8, cache_size=0, backend=SerialBackend()
        )
        got_d = np.array([default.score(row) for row in x])
        got_e = np.array([explicit.score(row) for row in x])
        np.testing.assert_array_equal(got_d, got_e)
        assert default.stats == explicit.stats


# ---------------------------------------------------------------------------
# deadline-driven flushing (runtime clock integration)
# ---------------------------------------------------------------------------
class TestDeadlineFlush:
    def _engine(self, model, **kwargs):
        clock = ManualClock()
        defaults = dict(batch_size=100, cache_size=0, max_latency_ms=5.0, clock=clock)
        defaults.update(kwargs)
        return ScoringEngine(model, **defaults), clock

    def test_poll_flushes_overdue_batch(self, stub_model, rng):
        engine, clock = self._engine(stub_model)
        rid = engine.submit(rng.normal(size=12))
        assert not engine.has_result(rid)  # batch of 1, far from full
        clock.advance(0.004)
        assert engine.poll() == 0  # 4ms < 5ms deadline
        assert not engine.has_result(rid)
        clock.advance(0.002)
        assert engine.poll() == 1  # 6ms > 5ms: deadline flush fired
        assert engine.has_result(rid)
        assert engine.stats["flush_deadline"] == 1
        assert engine.stats["flush_batch_full"] == 0

    def test_has_result_and_take_fire_overdue_deadlines(self, stub_model, rng):
        """A waiter spinning on has_result()/take() alone must still
        get the max_latency_ms guarantee — every engine entry point
        advances the deadline loop."""
        engine, clock = self._engine(stub_model)
        rid = engine.submit(rng.normal(size=12))
        clock.advance(0.006)
        assert engine.has_result(rid)  # fired the flush itself, no poll()
        assert engine.stats["flush_deadline"] == 1
        rid2 = engine.submit(rng.normal(size=12))
        clock.advance(0.006)
        assert isinstance(engine.take(rid2), float)  # take() fires it too
        assert engine.stats["flush_deadline"] == 2

    def test_submit_fires_overdue_deadline_first(self, stub_model, rng):
        """A new arrival must not join a batch that is already overdue."""
        engine, clock = self._engine(stub_model)
        r1 = engine.submit(rng.normal(size=12))
        clock.advance(0.006)
        r2 = engine.submit(rng.normal(size=12))  # poll happens at entry
        assert engine.has_result(r1)  # old batch flushed on its deadline
        assert not engine.has_result(r2)  # new batch, fresh 5ms deadline
        assert engine.stats["flush_deadline"] == 1
        clock.advance(0.005)
        engine.poll()
        assert engine.has_result(r2)

    def test_deadline_rearms_per_batch_not_per_request(self, stub_model, rng):
        """The deadline anchors on the *oldest* buffered request."""
        engine, clock = self._engine(stub_model)
        engine.submit(rng.normal(size=12))
        for _ in range(3):  # later arrivals must not push the deadline out
            clock.advance(0.001)
            engine.submit(rng.normal(size=12))
        clock.advance(0.0021)  # 5.1ms after the first request
        assert engine.poll() == 1
        assert engine.stats["rows_scored"] == 4

    def test_batch_full_still_wins_under_deadline(self, stub_model, rng):
        engine, clock = self._engine(stub_model, batch_size=3)
        ids = [engine.submit(row) for row in rng.normal(size=(3, 12))]
        assert all(engine.has_result(rid) for rid in ids)  # full before due
        assert engine.stats["flush_batch_full"] == 1
        assert engine.stats["flush_deadline"] == 0
        clock.advance(1.0)
        assert engine.poll() == 0  # nothing pending, nothing to fire

    def test_latencies_recorded_and_cache_hits_stay_out(self, stub_model, rng):
        """Regression: cache hits used to log 0.0 into ``latencies``,
        silently deflating the scored p95 that the deadline-bound
        claims are measured on.  A cache hit is counted in
        ``cache_hits`` (engine stat and per-version) — never in the
        scored-latency log."""
        engine, clock = self._engine(stub_model, cache_size=32)
        row = rng.normal(size=12)
        engine.submit(row)
        clock.advance(0.006)
        engine.poll()
        engine.submit(row)  # identical row: cache hit — served, not scored
        assert engine.latencies == pytest.approx([0.006])  # no 0.0 entry
        assert engine.stats["cache_hits"] == 1
        assert engine.registry.champion.cache_hits == 1

    # 1.5ms does NOT divide the 5ms deadline: the bound must hold even
    # when no arrival lands exactly on the deadline (the simulator has
    # to stop the clock *at* the deadline, not overshoot to the next
    # arrival)
    @pytest.mark.parametrize("interarrival_s", [0.001, 0.0015])
    def test_simulator_bounds_every_wait_by_the_deadline(self, platform, interarrival_s):
        """ISSUE acceptance: with max_latency_ms set, no request waits
        longer than the deadline under the simulator's manual clock."""
        max_latency_ms = 5.0
        engine = ScoringEngine(
            LinearROI(np.full(12, 0.02)),
            batch_size=64,  # arrival rate never fills this before 5ms
            cache_size=0,
            max_latency_ms=max_latency_ms,
            clock=ManualClock(),
        )
        replay = TrafficReplay(platform, engine, interarrival_s=interarrival_s)
        result = replay.replay_day(400, budget_fraction=0.3)
        assert result.latencies is not None and result.latencies.size == 400
        assert result.latencies.max() <= max_latency_ms / 1000.0 + 1e-9
        # and the deadline path is what served the stream, not batch-full
        assert result.engine_stats["flush_deadline"] > 0
        assert result.engine_stats["flush_batch_full"] == 0
        assert result.spend <= result.budget + 1e-9

    def test_simulator_interarrival_requires_manual_clock(self, platform, stub_model):
        engine = ScoringEngine(stub_model, batch_size=8)
        with pytest.raises(ValueError, match="ManualClock"):
            TrafficReplay(platform, engine, interarrival_s=0.001)

    def test_unknown_flush_reason_rejected_before_counting(self, stub_model, rng):
        engine = ScoringEngine(stub_model, batch_size=8, cache_size=0)
        engine.submit(rng.normal(size=12))
        with pytest.raises(ValueError, match="reason"):
            engine.flush(reason="shutdown")
        assert engine.stats["flushes"] == 0  # counters untouched
        assert engine.flush() == 1  # the request is still flushable

    def test_deadline_rearms_after_a_failing_flush(self, rng):
        """A raising batch must not strand the surviving versions'
        requests without a deadline — the latency bound has to keep
        holding after a partial flush failure."""

        class Boom:
            def predict_roi(self, x):
                raise RuntimeError("down")

        calls: list[int] = []
        healthy = LinearROI(np.zeros(4), calls=calls)
        reg = ModelRegistry(traffic_split=0.5, random_state=0)
        reg.register(healthy)  # v1 champion
        reg.register(Boom())  # v2 challenger on half the keys
        key_healthy = next(k for k in range(100) if reg.route(k).version == 1)
        key_boom = next(k for k in range(100) if reg.route(k).version == 2)
        clock = ManualClock()
        engine = ScoringEngine(
            reg, batch_size=100, cache_size=0, max_latency_ms=5.0, clock=clock
        )
        r_healthy = engine.submit(rng.normal(size=4), key=key_healthy)
        engine.submit(rng.normal(size=4), key=key_boom)
        clock.advance(0.006)  # past the deadline: poll fires the flush
        with pytest.raises(RuntimeError, match="down"):
            engine.poll()
        assert engine.n_pending == 1  # the healthy batch survived
        # the survivor is overdue, so the re-armed deadline fires on the
        # very next poll — no silent loss of the latency guarantee
        assert engine.poll() >= 1
        assert engine.has_result(r_healthy)
        assert calls == [1]

    def test_deadline_loop_handles_non_comparable_tied_keys(self):
        from repro.runtime import DeadlineLoop

        clock = ManualClock()
        loop = DeadlineLoop(clock)
        fired = []
        loop.schedule("str-key", 1.0, lambda: fired.append("s"))
        loop.schedule(42, 1.0, lambda: fired.append("i"))  # tied, int vs str
        clock.advance(2.0)
        assert loop.poll() == 2  # would TypeError if keys were compared
        assert sorted(fired) == ["i", "s"]


# ---------------------------------------------------------------------------
# asynchronous flushing on a thread backend
# ---------------------------------------------------------------------------
class TestAsyncFlush:
    class SlowROI(LinearROI):
        """Scorer that takes real wall time, to expose asynchrony."""

        def predict_roi(self, x):
            import time

            time.sleep(0.05)
            return super().predict_roi(x)

    def test_flush_returns_before_scores_land(self, rng):
        model = self.SlowROI(np.ones(6) * 0.02)
        with ThreadBackend(1) as backend:
            engine = ScoringEngine(model, batch_size=4, cache_size=0, backend=backend)
            ids = [engine.submit(row) for row in rng.normal(size=(3, 6))]
            import time

            start = time.perf_counter()
            engine.flush()
            dispatch_time = time.perf_counter() - start
            assert dispatch_time < 0.04  # did not wait for the 50ms model
            assert engine.n_inflight == 1
            engine.join()
            assert engine.n_inflight == 0
            assert all(engine.has_result(rid) for rid in ids)

    def test_thread_backend_scores_match_serial(self, rng):
        w = np.ones(6) * 0.03
        x = rng.normal(size=(40, 6))
        serial = ScoringEngine(LinearROI(w), batch_size=8, cache_size=16)
        got_serial = np.array([serial.score(row) for row in x])
        with ThreadBackend(2) as backend:
            threaded = ScoringEngine(
                LinearROI(w), batch_size=8, cache_size=16, backend=backend
            )
            got_threaded = np.array([threaded.score(row) for row in x])
        np.testing.assert_array_equal(got_serial, got_threaded)
        assert serial.stats == threaded.stats

    def test_async_latency_measured_at_completion_not_reap(self, rng):
        """On an async backend the latency log must stamp when scoring
        *completed*, not whenever the caller got around to reaping —
        else a late join() fabricates huge waits."""
        import time

        model = LinearROI(np.ones(6) * 0.02)
        clock = ManualClock()
        with ThreadBackend(1) as backend:
            engine = ScoringEngine(
                model, batch_size=4, cache_size=0, backend=backend, clock=clock
            )
            engine.submit(rng.normal(size=6))
            engine.flush()  # dispatches at simulated t=0
            time.sleep(0.2)  # let the worker finish (stamps t=0)
            clock.advance(100.0)  # simulated time passes before the reap
            engine.join()
        assert engine.latencies == [0.0]  # not 100.0

    def test_replay_end_to_end_on_thread_backend(self, platform):
        probe = TestTrafficReplay()._probe_weights()
        with ThreadBackend(2) as backend:
            engine = ScoringEngine(
                LinearROI(probe), batch_size=64, cache_size=0, backend=backend
            )
            result = TrafficReplay(platform, engine).replay_day(1500, budget_fraction=0.3)
        assert result.n_events == 1500
        assert result.spend <= result.budget + 1e-9
        assert result.revenue_ratio > 0.0


# ---------------------------------------------------------------------------
# submit_batch: the vectorised ingest path
# ---------------------------------------------------------------------------
class TestSubmitBatch:
    """``submit_batch(X)`` is semantically N ``submit`` calls.

    Pinned as *full* equivalence — scores, stats (including flush
    counters), cache hits, version attribution, and the latency log —
    on both the vectorised fast path (static routing, cache off) and
    the per-row fallback (cache or live challenger).  The scalar
    reference engine batches rows into the same pending blocks at
    flush, so even the score floats are bit-identical.
    """

    W = np.linspace(-0.5, 0.5, 6)

    def _engine(self, split=0.0, **kwargs) -> ScoringEngine:
        registry = ModelRegistry(traffic_split=split, random_state=11)
        registry.register(LinearROI(self.W), promote=True)
        if split > 0.0:
            registry.register(LinearROI(-self.W))
        return ScoringEngine(registry, batch_size=16, **kwargs)

    def _rows(self, n=150):
        return np.random.default_rng(5).normal(size=(n, 6))

    def test_fast_path_matches_per_row_submits(self):
        rows = self._rows()
        batch = self._engine(cache_size=0)
        scalar = self._engine(cache_size=0)
        ids = batch.submit_batch(rows)
        assert isinstance(ids, range) and len(ids) == len(rows)
        ref_ids = [scalar.submit(row) for row in rows]
        batch.flush()
        scalar.flush()
        got = batch.take_block(ids)
        expected = np.array([scalar.take(rid) for rid in ref_ids])
        np.testing.assert_array_equal(got, expected)  # bit-identical
        assert batch.stats == scalar.stats  # incl. flushes/batches

    def test_cache_fallback_matches_per_row(self):
        rows = np.tile(self._rows(10), (6, 1))  # repeats → cache traffic
        batch = self._engine(cache_size=64)
        scalar = self._engine(cache_size=64)
        ids = batch.submit_batch(rows)
        assert isinstance(ids, list)  # per-row path engaged
        ref_ids = [scalar.submit(row) for row in rows]
        batch.flush()
        scalar.flush()
        for rid, ref in zip(ids, ref_ids):
            assert batch.take(rid) == scalar.take(ref)
        assert batch.stats == scalar.stats
        assert batch.stats["cache_hits"] > 0

    def test_challenger_routing_fallback_matches(self):
        """A live split forces per-row routing: the RNG draws in the
        same order as N submits, so versions and scores agree."""
        rows = self._rows(80)
        batch = self._engine(split=0.3, cache_size=0)
        scalar = self._engine(split=0.3, cache_size=0)
        ids = batch.submit_batch(rows)
        ref_ids = [scalar.submit(row) for row in rows]
        batch.flush()
        scalar.flush()
        for rid, ref in zip(ids, ref_ids):
            assert batch.version_of(rid) == scalar.version_of(ref)
            assert batch.take(rid) == scalar.take(ref)
        assert batch.stats == scalar.stats

    def test_keys_route_like_scalar_submits(self):
        rows = self._rows(60)
        keys = [f"user-{i % 7}" for i in range(len(rows))]
        batch = self._engine(split=0.5, cache_size=0)
        scalar = self._engine(split=0.5, cache_size=0)
        ids = batch.submit_batch(rows, keys=keys)
        ref_ids = [scalar.submit(row, key=k) for row, k in zip(rows, keys)]
        batch.flush()
        scalar.flush()
        for rid, ref in zip(ids, ref_ids):
            assert batch.version_of(rid) == scalar.version_of(ref)
            assert batch.take(rid) == scalar.take(ref)

    def test_latency_log_identical_under_manual_clock(self):
        rows = self._rows(48)
        clocks = (ManualClock(), ManualClock())
        batch = self._engine(cache_size=0, clock=clocks[0])
        scalar = self._engine(cache_size=0, clock=clocks[1])
        batch.submit_batch(rows)
        for row in rows:
            scalar.submit(row)
        for clock in clocks:
            clock.advance(0.004)
        batch.flush()
        scalar.flush()
        assert batch.latencies == scalar.latencies
        assert batch.latency_hist.snapshot() == scalar.latency_hist.snapshot()

    def test_mixed_scalar_then_block_bookkeeping(self):
        """Interleaving scalar submits with a block exercises the
        mixed-block per-rid path; results must still match per-row."""
        rows = self._rows(40)
        batch = self._engine(cache_size=0)
        scalar = self._engine(cache_size=0)
        pre = [batch.submit(row) for row in rows[:3]]
        ids = batch.submit_batch(rows[3:])
        ref_ids = [scalar.submit(row) for row in rows]
        batch.flush()
        scalar.flush()
        got = [batch.take(rid) for rid in pre] + list(batch.take_block(ids))
        expected = [scalar.take(rid) for rid in ref_ids]
        assert got == expected
        assert batch.stats == scalar.stats

    def test_validation_and_empty(self):
        engine = self._engine(cache_size=0)
        with pytest.raises(ValueError, match="2-D"):
            engine.submit_batch(np.zeros(6))
        with pytest.raises(ValueError, match="keys"):
            engine.submit_batch(np.zeros((3, 6)), keys=["a"])
        assert engine.submit_batch(np.empty((0, 6))) == []
        assert engine.stats["requests"] == 0


# ---------------------------------------------------------------------------
# MultiDayPacer (cross-day carryover)
# ---------------------------------------------------------------------------
class TestMultiDayPacer:
    def test_day2_absorbs_day1_underspend_pinned(self):
        """ISSUE acceptance: day-1 under-spend funds day-2's pacing,
        total multi-day spend stays strictly under the campaign
        budget, and every single-day invariant keeps holding."""
        daily, horizon = 10.0, 100
        multi = MultiDayPacer(
            daily_budget=daily,
            horizon=horizon,
            pacer_params=dict(
                warmup=8, refresh_every=8, window=32, lookahead=16,
                curve_slack=0.05, use_roi_floor=False,
            ),
        )
        # day 1: traffic dries up at midday — only 50 of 100 expected
        # arrivals show, so the uniform curve strands ~half the budget
        # (0.3 unit costs never divide the budget exactly, so every
        # day's spend sits strictly inside its boundary)
        day1 = multi.start_day()
        for _ in range(50):
            day1.offer(0.9, 0.3)
        assert day1.spent <= daily
        carry = multi.end_day()
        underspend = daily - day1.spent
        assert underspend > 3.0  # the curve really did strand budget
        assert carry == pytest.approx(underspend)

        # day 2: full traffic; its pacer holds base + carry
        day2 = multi.start_day()
        assert day2.budget == pytest.approx(daily + carry)
        for _ in range(horizon):
            day2.offer(0.9, 0.3)
        multi.end_day()

        # single-day invariants, both days
        for pacer in multi.days:
            assert pacer.spent <= pacer.budget + 1e-9
            for n_seen, spent, _thr in pacer.history:
                cap = pacer.budget * min(1.0, n_seen / pacer.horizon + 0.05)
                assert spent <= cap + 1e-9
        # day 2 actually used the carried budget: spent beyond its base
        assert multi.days[1].spent > daily
        # campaign invariant: strictly under the two-day plan
        assert multi.total_spent < 2 * daily
        assert multi.total_base_budget == pytest.approx(2 * daily)

    def test_early_mode_tilts_the_curve_forward(self):
        """'early' releases the carry at the start of the next day;
        'spread' paces it evenly — early must be ahead at quarter-day."""
        spends = {}
        for mode in ("spread", "early"):
            multi = MultiDayPacer(
                daily_budget=10.0,
                horizon=100,
                carryover_mode=mode,
                pacer_params=dict(
                    warmup=4, refresh_every=4, window=32, lookahead=8,
                    curve_slack=0.01, use_roi_floor=False,
                ),
            )
            day1 = multi.start_day()
            for _ in range(30):  # heavy underspend: carry ~7
                day1.offer(0.9, 1.0)
            multi.end_day()
            day2 = multi.start_day()
            for _ in range(25):  # first quarter of day 2
                day2.offer(0.9, 1.0)
            spends[mode] = day2.spent
            multi.end_day()
        assert spends["early"] > spends["spread"] + 2.0

    def test_zero_carryover_is_amnesiac(self):
        multi = MultiDayPacer(daily_budget=10.0, horizon=50, carryover=0.0)
        day1 = multi.start_day()
        for _ in range(10):
            day1.offer(0.5, 1.0)
        assert multi.end_day() == 0.0
        assert multi.start_day().budget == 10.0

    def test_delegation_and_lifecycle_errors(self):
        multi = MultiDayPacer(daily_budget=5.0, horizon=10)
        with pytest.raises(RuntimeError, match="start_day"):
            multi.offer(0.5, 1.0)
        with pytest.raises(RuntimeError, match="start_day"):
            multi.end_day()
        multi.start_day()
        assert isinstance(multi.offer(0.5, 1.0), bool)
        multi.observe_outcome(1, 1.0, 1.0)
        with pytest.raises(RuntimeError, match="end_day"):
            multi.start_day()
        multi.end_day()

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="carryover must"):
            MultiDayPacer(daily_budget=1.0, horizon=10, carryover=1.5)
        with pytest.raises(ValueError, match="carryover_mode"):
            MultiDayPacer(daily_budget=1.0, horizon=10, carryover_mode="late")
        with pytest.raises(ValueError, match="daily_budget"):
            MultiDayPacer(daily_budget=-1.0, horizon=10)
        multi = MultiDayPacer()  # defaults omitted is fine...
        with pytest.raises(ValueError, match="base_budget"):
            multi.start_day()  # ...until a day needs numbers

    def test_per_day_overrides(self):
        multi = MultiDayPacer(daily_budget=5.0, horizon=10)
        day = multi.start_day(base_budget=7.0, horizon=20)
        assert day.budget == 7.0
        assert day.horizon == 20


# ---------------------------------------------------------------------------
# multi-day replay (campaign mode)
# ---------------------------------------------------------------------------
class TestMultiDayReplay:
    def test_campaign_accounting_and_carry(self, platform):
        probe = TestTrafficReplay()._probe_weights()
        engine = ScoringEngine(LinearROI(probe), batch_size=128, cache_size=0)
        replay = TrafficReplay(platform, engine)
        result = replay.replay_days(3, 1200, budget_fraction=0.3)
        assert result.n_days == 3 and len(result.ledger) == 3
        # per-day: the day budget is base + carry-in, and never overspent
        carry_in = 0.0
        for day, (base, day_budget, spent, carry_out) in zip(result.days, result.ledger):
            assert day_budget == pytest.approx(base + carry_in)
            assert day.budget == pytest.approx(day_budget)
            assert day.spend == pytest.approx(spent)
            assert spent <= day_budget + 1e-9
            assert carry_out == pytest.approx(day_budget - spent)
            carry_in = carry_out
        # campaign invariant: total spend strictly under the total plan
        assert result.total_spend < result.total_base_budget
        assert result.total_incremental_revenue > 0.0
        summary = result.summary()
        assert summary["n_days"] == 3 and len(summary["carryovers"]) == 3

    def test_carry_makes_later_days_richer(self, platform):
        """With carryover, day budgets are weakly increasing whenever
        every day underspends — and day 2's must strictly exceed its
        base because the strict boundary always leaves residual."""
        probe = TestTrafficReplay()._probe_weights()
        engine = ScoringEngine(LinearROI(probe), batch_size=128, cache_size=0)
        result = TrafficReplay(platform, engine).replay_days(2, 1000, budget_fraction=0.25)
        base2, budget2, _spent2, _c = result.ledger[1]
        assert budget2 > base2  # day-1 residual landed on day 2

    def test_per_day_engine_stats_are_deltas_not_cumulative(self, platform, stub_model):
        """One engine serves the whole campaign, but each day's
        ReplayResult must report that day's counters only."""
        engine = ScoringEngine(stub_model, batch_size=64, cache_size=0)
        result = TrafficReplay(platform, engine).replay_days(2, 500, budget_fraction=0.3)
        assert result.days[0].engine_stats["requests"] == 500
        assert result.days[1].engine_stats["requests"] == 500  # not 1000
        assert engine.stats["requests"] == 1000  # the engine itself is cumulative

    def test_invalid_n_days(self, platform, stub_model):
        engine = ScoringEngine(stub_model, batch_size=8)
        with pytest.raises(ValueError, match="n_days"):
            TrafficReplay(platform, engine).replay_days(0, 500)


# ---------------------------------------------------------------------------
# BudgetPacer
# ---------------------------------------------------------------------------
class TestBudgetPacer:
    def test_zero_budget_admits_nobody(self, rng):
        pacer = BudgetPacer(0.0, horizon=100)
        admits = [pacer.offer(s, 0.3) for s in rng.random(100)]
        assert not any(admits)
        assert pacer.spent == 0.0

    def test_nonpositive_cost_rejected(self):
        pacer = BudgetPacer(10.0, horizon=10)
        with pytest.raises(ValueError, match="cost"):
            pacer.offer(0.5, 0.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="budget"):
            BudgetPacer(-1.0, horizon=10)
        with pytest.raises(ValueError, match="budget"):
            BudgetPacer(float("nan"), horizon=10)
        with pytest.raises(ValueError, match="horizon"):
            BudgetPacer(1.0, horizon=0)

    def test_paces_tiny_cost_traffic(self, rng):
        """The threshold fit is cost-scale independent (relative gap)."""
        n = 2000
        costs = np.full(n, 2e-5)
        budget = 0.3 * float(np.sum(costs))
        pacer = BudgetPacer(budget, horizon=n)
        for s in rng.random(n):
            pacer.offer(float(s), 2e-5)
        assert pacer.spent <= budget + 1e-12
        assert pacer.spent > 0.8 * budget  # threshold tracked, not arbitrary

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        budget_frac=st.floats(min_value=0.0, max_value=1.2),
        n=st.integers(min_value=1, max_value=800),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_overspends_property(self, seed, budget_frac, n):
        """Hard invariant: spend <= budget for any stream and budget."""
        gen = np.random.default_rng(seed)
        scores = gen.random(n)
        costs = gen.random(n) * 0.5 + 0.05
        budget = budget_frac * float(np.sum(costs))
        pacer = BudgetPacer(budget, horizon=n, window=64, refresh_every=16, warmup=16)
        for s, c in zip(scores, costs):
            pacer.offer(float(s), float(c))
        assert pacer.spent <= budget + 1e-9
        assert pacer.n_admitted <= n

    def test_paces_instead_of_front_loading(self, rng):
        """Spend at mid-day stays near half the budget, not all of it."""
        n = 4000
        scores = rng.random(n)
        costs = np.full(n, 0.3)
        budget = 0.3 * float(np.sum(costs))
        pacer = BudgetPacer(budget, horizon=n)
        half_spend = None
        for k, (s, c) in enumerate(zip(scores, costs)):
            pacer.offer(float(s), float(c))
            if k == n // 2:
                half_spend = pacer.spent
        assert 0.35 * budget < half_spend < 0.65 * budget
        assert pacer.spent > 0.9 * budget  # and the budget does get used

    def test_short_horizon_still_engages_threshold(self, rng):
        """Default warmup is capped so tiny days are not score-blind."""
        n = 100
        pacer = BudgetPacer(5.0, horizon=n, refresh_every=8, window=32)
        assert pacer.warmup == n // 4
        for s in rng.random(n):
            pacer.offer(float(s), 0.3)
        assert pacer.history  # the threshold refresh actually ran

    def test_roi_floor_activates_with_outcomes(self, rng):
        pacer = BudgetPacer(
            1e9, horizon=2000, warmup=10, refresh_every=10, min_arm_outcomes=20
        )
        # profitable traffic: treated users realise revenue ~70% of cost
        for _ in range(300):
            treated = rng.random() < 0.5
            y_c = float(rng.random() < 0.8) if treated else 0.0
            y_r = float(rng.random() < 0.55) if treated else 0.0
            pacer.observe_outcome(int(treated), y_r, y_c)
            pacer.offer(float(rng.random()), 0.3)
        assert pacer.roi_floor_ > 0.0
        assert pacer.threshold_ >= pacer.roi_floor_

    def test_roi_floor_inactive_when_tau_c_not_positive(self, rng):
        """Zero realised cost violates Assumption 4: the floor must stay off."""
        pacer = BudgetPacer(
            1e9, horizon=1000, warmup=10, refresh_every=10, min_arm_outcomes=20
        )
        admitted = 0
        for _ in range(500):
            treated = rng.random() < 0.5
            y_r = float(treated and rng.random() < 0.6)
            pacer.observe_outcome(int(treated), y_r, 0.0)  # never any cost
            admitted += pacer.offer(float(rng.random()), 0.3)
        assert pacer.roi_floor_ == 0.0
        assert admitted > 400  # a degenerate floor would shut admission off

    def test_custom_curve_respected(self, rng):
        """A back-loaded curve keeps early spend near zero."""
        n = 2000
        pacer = BudgetPacer(
            100.0,
            horizon=n,
            target_curve=lambda p: p**3,
            curve_slack=0.01,
            warmup=16,
        )
        for _ in range(n // 4):
            pacer.offer(float(rng.random()), 0.3)
        # curve(0.25) ~ 1.6% of budget (+1% slack)
        assert pacer.spent <= 100.0 * (0.25**3 + 0.011) + 0.3

    def test_warmup_boundary_gates_the_fitting_arrival(self):
        """Regression: the arrival that completes warmup triggers the
        first threshold fit and must already be gated by it — the
        off-by-one (`_refresh` at >= warmup, gate at > warmup) ignored
        the freshly fitted threshold for exactly that arrival."""
        pacer = BudgetPacer(
            10.0,
            horizon=100,
            warmup=4,
            refresh_every=1,
            lookahead=10,
            curve_slack=0.5,
            use_roi_floor=False,
        )
        assert pacer.warmup == 4
        # warmup arrivals are curve-gated only: all admitted, spend runs
        # far ahead of the uniform curve
        assert all(pacer.offer(0.9, 1.0) for _ in range(3))
        assert pacer.spent == 3.0
        # arrival 4 completes warmup; the fit sees spend ahead of the
        # curve and sets a prohibitive threshold — this very arrival
        # must be rejected (the curve cap alone would still admit it)
        assert pacer.offer(0.9, 1.0) is False
        assert pacer.history and pacer.history[0][0] == 4  # fit happened at n_seen=4
        assert pacer.threshold_ > 0.9
        assert pacer.spent == 3.0

    def test_ahead_of_curve_lockout_cannot_be_pierced(self):
        """Regression: the ahead-of-curve lockout used to set
        ``threshold_ = max(window scores) + 1``, so a later arrival
        scoring above the window max pierced the lockout and spent
        while the pacer believed it was admitting nothing.  The
        lockout must be unconditional (``inf``)."""
        pacer = BudgetPacer(
            100.0,
            horizon=100,
            warmup=4,
            refresh_every=64,  # no re-fit between the arrivals below
            lookahead=4,
            curve_slack=0.5,  # the curve cap alone would still admit
            window=32,
            use_roi_floor=False,
        )
        # warmup arrivals are curve-gated only: spend runs far ahead of
        # the uniform curve's lookahead target
        assert all(pacer.offer(0.5, 5.0) for _ in range(3))
        assert pacer.spent == 15.0
        # arrival 4 completes warmup; the fit sees spend ahead of the
        # curve -> lockout engages and gates this very arrival
        assert pacer.offer(0.5, 5.0) is False
        assert pacer.threshold_ == np.inf
        # the piercing arrival: scores above the window max (old
        # threshold was max + 1 = 1.5) with no refresh in between
        assert pacer.offer(2.0, 5.0) is False
        assert pacer.spent == 15.0  # nothing leaked through the lockout

    def test_adapts_to_intra_day_score_drift(self, rng):
        """Non-stationary arrivals: the score distribution jumps mid-day
        and the sliding window must re-fit the threshold while both
        pacing invariants keep holding."""
        n = 4000
        budget = 800.0  # constant unit costs -> ~20% of arrivals affordable
        curve_slack = 0.05
        pacer = BudgetPacer(
            budget,
            horizon=n,
            window=512,
            refresh_every=64,
            warmup=128,
            lookahead=256,
            curve_slack=curve_slack,
            use_roi_floor=False,
        )
        scores = np.concatenate(
            [rng.uniform(0.0, 1.0, n // 2), rng.uniform(2.0, 3.0, n // 2)]
        )
        for s in scores:
            pacer.offer(float(s), 1.0)
        # invariant 1: never overspends the budget
        assert pacer.spent <= budget + 1e-9
        # invariant 2: every refresh point sat on or under curve + slack
        for n_seen, spent, _thr in pacer.history:
            cap = budget * min(1.0, n_seen / n + curve_slack)
            assert spent <= cap + 1e-9
        # the threshold re-adapted to the drifted distribution: late
        # fits sit in the new score range, early fits in the old one
        early = [thr for seen, _s, thr in pacer.history if seen <= n // 2]
        late = [thr for seen, _s, thr in pacer.history if seen > n // 2 + 512]
        assert early and late
        assert np.median(late) > np.median(early) + 1.0
        assert np.median(early) < 1.0  # fitted inside the pre-drift range
        assert np.median(late) > 2.0  # fitted inside the post-drift range
        # and the budget keeps being used after the drift, not starved
        assert pacer.spent > 0.8 * budget


# ---------------------------------------------------------------------------
# TrafficReplay end-to-end (the ISSUE acceptance scenario)
# ---------------------------------------------------------------------------
class TestTrafficReplay:
    def _probe_weights(self):
        from repro.data import criteo_uplift_v2

        probe = criteo_uplift_v2(4000, random_state=5)
        return np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]

    def test_10k_day_matches_offline_greedy(self, platform):
        """Never overspends and reaches >= 90% of the oracle's revenue."""
        engine = ScoringEngine(
            LinearROI(self._probe_weights()), batch_size=256, cache_size=0
        )
        replay = TrafficReplay(platform, engine)
        result = replay.replay_day(10_000, budget_fraction=0.3)
        assert result.spend <= result.budget + 1e-9
        assert result.revenue_ratio >= 0.9
        # spend trajectory tracks the uniform curve at mid-day
        mid = result.spend_trajectory[result.n_events // 2]
        assert 0.35 * result.budget < mid < 0.65 * result.budget

    def test_online_equals_oracle_scores(self, platform):
        """The oracle is computed on the very scores served online."""
        engine = ScoringEngine(
            LinearROI(self._probe_weights()), batch_size=64, cache_size=0
        )
        result = TrafficReplay(platform, engine).replay_day(
            1500, budget_fraction=0.25
        )
        assert result.n_events == 1500
        assert result.oracle_spend <= result.budget + 1e-9
        assert 0.0 < result.revenue_ratio <= 1.0 + 1e-9

    def test_single_user_batches(self, platform):
        """batch_size=1 (pure synchronous serving) still works end-to-end."""
        engine = ScoringEngine(
            LinearROI(self._probe_weights()), batch_size=1, cache_size=0
        )
        result = TrafficReplay(platform, engine).replay_day(400)
        assert result.n_events == 400
        assert result.spend <= result.budget + 1e-9
        assert result.engine_stats["model_calls"] == 400

    def test_zero_budget_day(self, platform):
        engine = ScoringEngine(LinearROI(self._probe_weights()), batch_size=32)
        result = TrafficReplay(platform, engine).replay_day(300, budget=0.0)
        assert result.n_treated == 0
        assert result.spend == 0.0

    def test_feedback_populates_roi_floor(self, platform):
        engine = ScoringEngine(
            LinearROI(self._probe_weights()), batch_size=64, cache_size=0
        )
        replay = TrafficReplay(platform, engine, feedback=True, random_state=7)
        result = replay.replay_day(
            3000,
            budget_fraction=0.3,
            pacer_params=dict(min_arm_outcomes=30),
        )
        assert result.spend <= result.budget + 1e-9
        # the floor engaged at some refresh: recorded thresholds reach it
        assert any(thr > 0 for _n, _s, thr in result.pacing_history)


# ---------------------------------------------------------------------------
# OutcomeLedger folding (regression: streaming moments must survive
# pickle round-trips and Snapshot.merge-style folding exactly)
# ---------------------------------------------------------------------------


class TestOutcomeLedgerFolding:
    @staticmethod
    def _filled(seed, n):
        from repro.serving.registry import OutcomeLedger

        gen = np.random.default_rng(seed)
        ledger = OutcomeLedger()
        rows = list(zip(gen.random(n) < 0.5, gen.random(n), gen.random(n) * 0.5))
        for t, r, c in rows:
            ledger.record(bool(t), float(r), float(c))
        return ledger, rows

    def test_pickle_roundtrip_exact_moments(self):
        import pickle

        ledger, _ = self._filled(0, 75)
        before_net = ledger.moments("net")
        before_rev = ledger.moments("revenue")
        clone = pickle.loads(pickle.dumps(ledger))
        assert clone.moments("net") == before_net
        assert clone.moments("revenue") == before_rev
        assert (clone.n, clone.n_treated) == (ledger.n, ledger.n_treated)
        assert (clone.spend, clone.revenue) == (ledger.spend, ledger.revenue)
        # folding a pickled replica back in doubles every raw sum
        ledger.merge(clone)
        assert ledger.n == 150
        assert ledger.moments("net")[0] == before_net[0]

    def test_merge_equals_sequential_recording(self):
        from repro.serving.registry import OutcomeLedger

        a, rows_a = self._filled(1, 40)
        b, rows_b = self._filled(2, 60)
        merged = a.merge(b)
        assert merged is a
        sequential = OutcomeLedger()
        for t, r, c in rows_a + rows_b:
            sequential.record(bool(t), float(r), float(c))
        # raw sums fold as block additions, so the only divergence from
        # row-by-row accumulation is float summation order (~1 ULP)
        for metric in ("net", "revenue"):
            got, want = a.moments(metric), sequential.moments(metric)
            assert got[-1] == want[-1]  # counts are exact
            assert got[:-1] == pytest.approx(want[:-1], rel=1e-12)
        assert a.n == sequential.n and a.n_treated == sequential.n_treated

    def test_merge_commutes(self):
        a1, _ = self._filled(3, 30)
        b1, _ = self._filled(4, 50)
        a2, _ = self._filled(3, 30)
        b2, _ = self._filled(4, 50)
        assert a1.merge(b1).moments("net") == b2.merge(a2).moments("net")

    def test_merge_empty_is_identity(self):
        from repro.serving.registry import OutcomeLedger

        a, _ = self._filled(5, 20)
        before = a.moments("net")
        a.merge(OutcomeLedger())
        assert a.moments("net") == before


# ---------------------------------------------------------------------------
# Day-ahead planning (MultiDayPacer.plan_next_day + EmpiricalCurve)
# ---------------------------------------------------------------------------


class TestDayAheadPlanning:
    @staticmethod
    def _run_day(multi, n=600, seed=0):
        gen = np.random.default_rng(seed)
        multi.start_day()
        for _ in range(n):
            multi.offer(float(gen.random()), 0.2 + 0.3 * float(gen.random()))
        pacer = multi.current
        multi.end_day()
        return pacer

    def test_plan_sizes_from_observed_traffic(self):
        from repro.serving.pacing import MultiDayPacer

        multi = MultiDayPacer(
            daily_budget=40.0, horizon=600, pacer_params={"refresh_every": 50}
        )
        day1 = self._run_day(multi)
        plan = multi.plan_next_day(0.3)
        assert plan.base_budget == pytest.approx(0.3 * day1.offered_cost)
        assert plan.horizon == 600
        curve = plan.target_curve
        assert curve is not None
        assert curve(0.0) == 0.0 and curve(1.0) == 1.0
        # demand arrives uniformly here, so the empirical curve is
        # close to the identity in the interior
        assert curve(0.5) == pytest.approx(0.5, abs=0.1)

    def test_planned_day_runs_with_planned_curve(self):
        import pickle

        from repro.serving.pacing import MultiDayPacer

        multi = MultiDayPacer(
            daily_budget=40.0, horizon=600, pacer_params={"refresh_every": 50}
        )
        self._run_day(multi, seed=1)
        plan = multi.plan_next_day(0.3)
        pacer = multi.start_day(plan.base_budget, plan.horizon, plan.target_curve)
        assert pacer.budget == pytest.approx(plan.base_budget + multi.days[0].budget
                                             - multi.days[0].spent)
        pickle.loads(pickle.dumps(pacer))  # planned pacers must still ship
        gen = np.random.default_rng(2)
        for _ in range(600):
            multi.offer(float(gen.random()), 0.25)
        assert pacer.spent <= pacer.budget
        multi.end_day()

    def test_plan_without_completed_day_rejected(self):
        from repro.serving.pacing import MultiDayPacer

        multi = MultiDayPacer(daily_budget=10.0, horizon=100)
        with pytest.raises(RuntimeError, match="completed day"):
            multi.plan_next_day(0.3)
        multi.start_day()
        with pytest.raises(RuntimeError, match="completed day"):
            multi.plan_next_day(0.3)

    def test_offered_cost_tracks_all_offers(self):
        from repro.serving.pacing import BudgetPacer

        pacer = BudgetPacer(5.0, 100, refresh_every=10)
        gen = np.random.default_rng(3)
        costs = 0.1 + 0.2 * gen.random(100)
        for c in costs:
            pacer.offer(float(gen.random()), float(c))
        # offered_cost counts admitted AND skipped offers
        assert pacer.offered_cost == pytest.approx(float(costs.sum()))
        assert pacer.offered_trace  # refreshes recorded the demand shape
        n_last, c_last = pacer.offered_trace[-1]
        assert n_last <= 100 and c_last <= pacer.offered_cost

    def test_empirical_curve_validation(self):
        from repro.serving.pacing import EmpiricalCurve

        with pytest.raises(ValueError, match="span"):
            EmpiricalCurve(np.array([0.0, 0.5]), np.array([0.0, 0.5]))
        with pytest.raises(ValueError, match="non-decreasing"):
            EmpiricalCurve(np.array([0.0, 0.6, 1.0]), np.array([0.0, 1.2, 1.0]))
        with pytest.raises(ValueError, match="non-empty"):
            EmpiricalCurve.from_trace([], 0, 0.0)

"""Tests for the numpy-only inference primitives (``repro.utils.stats``)."""

import numpy as np
import pytest

from repro.utils.stats import MeanCI, betainc, mean_confidence_interval, t_cdf, t_ppf


class TestBetainc:
    def test_endpoints(self):
        assert betainc(2.0, 3.0, 0.0) == 0.0
        assert betainc(2.0, 3.0, 1.0) == 1.0

    def test_uniform_special_case(self):
        # I_x(1, 1) is the uniform CDF
        for x in (0.1, 0.35, 0.8):
            assert betainc(1.0, 1.0, x) == pytest.approx(x, abs=1e-12)

    def test_symmetry(self):
        # I_x(a, b) = 1 - I_{1-x}(b, a)
        assert betainc(2.5, 4.0, 0.3) == pytest.approx(
            1.0 - betainc(4.0, 2.5, 0.7), abs=1e-12
        )

    def test_known_value(self):
        # I_{0.5}(2, 2) = 0.5 by symmetry of Beta(2, 2)
        assert betainc(2.0, 2.0, 0.5) == pytest.approx(0.5, abs=1e-12)

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="a and b"):
            betainc(0.0, 1.0, 0.5)
        with pytest.raises(ValueError, match="x must"):
            betainc(1.0, 1.0, 1.5)


class TestTCdf:
    def test_symmetry_and_median(self):
        assert t_cdf(0.0, 5) == 0.5
        assert t_cdf(1.7, 5) == pytest.approx(1.0 - t_cdf(-1.7, 5), abs=1e-12)

    def test_df1_is_cauchy(self):
        # t with 1 df is standard Cauchy: CDF(1) = 3/4
        assert t_cdf(1.0, 1) == pytest.approx(0.75, abs=1e-10)

    def test_large_df_approaches_normal(self):
        # Phi(1.96) ~ 0.975002
        assert t_cdf(1.96, 10_000) == pytest.approx(0.975002, abs=5e-4)

    def test_invalid_df(self):
        with pytest.raises(ValueError, match="df"):
            t_cdf(1.0, 0)


class TestTPpf:
    @pytest.mark.parametrize(
        "df, expect",
        [
            (1, 12.7062047),  # the classic two-sided 95% critical values
            (2, 4.3026527),
            (4, 2.7764451),
            (10, 2.2281389),
            (30, 2.0422725),
            (100, 1.9839715),
        ],
    )
    def test_matches_tabulated_critical_values(self, df, expect):
        assert t_ppf(0.975, df) == pytest.approx(expect, abs=1e-5)

    def test_symmetry_and_median(self):
        assert t_ppf(0.5, 7) == 0.0
        assert t_ppf(0.025, 7) == pytest.approx(-t_ppf(0.975, 7), abs=1e-12)

    def test_roundtrip_with_cdf(self):
        for q in (0.6, 0.9, 0.99):
            assert t_cdf(t_ppf(q, 6), 6) == pytest.approx(q, abs=1e-9)

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="q must"):
            t_ppf(0.0, 5)
        with pytest.raises(ValueError, match="df"):
            t_ppf(0.9, -1)


class TestMeanConfidenceInterval:
    def test_pinned_textbook_interval(self):
        """n=5, mean 3, sd sqrt(2.5): 3 ± 2.7764 * sqrt(2.5/5)."""
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0], level=0.95)
        assert isinstance(ci, MeanCI)
        assert ci.mean == pytest.approx(3.0)
        assert ci.half_width == pytest.approx(2.7764451 * np.sqrt(2.5 / 5.0), abs=1e-5)
        assert ci.lo == pytest.approx(ci.mean - ci.half_width)
        assert ci.hi == pytest.approx(ci.mean + ci.half_width)
        assert ci.n == 5 and ci.level == 0.95

    def test_zero_variance_degenerates_to_a_point(self):
        ci = mean_confidence_interval([2.0, 2.0, 2.0])
        assert (ci.lo, ci.mean, ci.hi) == (2.0, 2.0, 2.0)
        assert ci.excludes_zero()

    def test_higher_level_is_wider(self):
        samples = [0.3, 1.1, -0.4, 0.8, 0.2, 0.9]
        assert (
            mean_confidence_interval(samples, level=0.99).half_width
            > mean_confidence_interval(samples, level=0.95).half_width
            > mean_confidence_interval(samples, level=0.5).half_width
        )

    def test_excludes_zero(self):
        assert mean_confidence_interval([5.0, 5.1, 4.9]).excludes_zero()
        assert not mean_confidence_interval([-1.0, 1.0, 0.5, -0.5]).excludes_zero()

    def test_coverage_is_nominal(self):
        """Monte-Carlo: the 90% t-interval covers the true mean ~90%
        of the time for tiny normal samples (the reason to use t)."""
        rng = np.random.default_rng(0)
        covered = 0
        n_rep = 2000
        for _ in range(n_rep):
            ci = mean_confidence_interval(rng.normal(1.0, 2.0, size=5), level=0.9)
            covered += ci.lo <= 1.0 <= ci.hi
        assert covered / n_rep == pytest.approx(0.9, abs=0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="level"):
            mean_confidence_interval([1.0, 2.0], level=1.0)
        with pytest.raises(ValueError, match=">= 2"):
            mean_confidence_interval([1.0])
        with pytest.raises(ValueError, match="finite"):
            mean_confidence_interval([1.0, np.nan, 2.0])

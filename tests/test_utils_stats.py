"""Tests for the numpy-only inference primitives (``repro.utils.stats``)."""

import numpy as np
import pytest

from repro.utils.stats import (
    MeanCI,
    betainc,
    mean_confidence_interval,
    t_cdf,
    t_ppf,
    welch_ci_from_moments,
    welch_confidence_interval,
)


class TestBetainc:
    def test_endpoints(self):
        assert betainc(2.0, 3.0, 0.0) == 0.0
        assert betainc(2.0, 3.0, 1.0) == 1.0

    def test_uniform_special_case(self):
        # I_x(1, 1) is the uniform CDF
        for x in (0.1, 0.35, 0.8):
            assert betainc(1.0, 1.0, x) == pytest.approx(x, abs=1e-12)

    def test_symmetry(self):
        # I_x(a, b) = 1 - I_{1-x}(b, a)
        assert betainc(2.5, 4.0, 0.3) == pytest.approx(
            1.0 - betainc(4.0, 2.5, 0.7), abs=1e-12
        )

    def test_known_value(self):
        # I_{0.5}(2, 2) = 0.5 by symmetry of Beta(2, 2)
        assert betainc(2.0, 2.0, 0.5) == pytest.approx(0.5, abs=1e-12)

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="a and b"):
            betainc(0.0, 1.0, 0.5)
        with pytest.raises(ValueError, match="x must"):
            betainc(1.0, 1.0, 1.5)


class TestTCdf:
    def test_symmetry_and_median(self):
        assert t_cdf(0.0, 5) == 0.5
        assert t_cdf(1.7, 5) == pytest.approx(1.0 - t_cdf(-1.7, 5), abs=1e-12)

    def test_df1_is_cauchy(self):
        # t with 1 df is standard Cauchy: CDF(1) = 3/4
        assert t_cdf(1.0, 1) == pytest.approx(0.75, abs=1e-10)

    def test_large_df_approaches_normal(self):
        # Phi(1.96) ~ 0.975002
        assert t_cdf(1.96, 10_000) == pytest.approx(0.975002, abs=5e-4)

    def test_invalid_df(self):
        with pytest.raises(ValueError, match="df"):
            t_cdf(1.0, 0)


class TestTPpf:
    @pytest.mark.parametrize(
        "df, expect",
        [
            (1, 12.7062047),  # the classic two-sided 95% critical values
            (2, 4.3026527),
            (4, 2.7764451),
            (10, 2.2281389),
            (30, 2.0422725),
            (100, 1.9839715),
        ],
    )
    def test_matches_tabulated_critical_values(self, df, expect):
        assert t_ppf(0.975, df) == pytest.approx(expect, abs=1e-5)

    def test_symmetry_and_median(self):
        assert t_ppf(0.5, 7) == 0.0
        assert t_ppf(0.025, 7) == pytest.approx(-t_ppf(0.975, 7), abs=1e-12)

    def test_roundtrip_with_cdf(self):
        for q in (0.6, 0.9, 0.99):
            assert t_cdf(t_ppf(q, 6), 6) == pytest.approx(q, abs=1e-9)

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="q must"):
            t_ppf(0.0, 5)
        with pytest.raises(ValueError, match="df"):
            t_ppf(0.9, -1)


class TestMeanConfidenceInterval:
    def test_pinned_textbook_interval(self):
        """n=5, mean 3, sd sqrt(2.5): 3 ± 2.7764 * sqrt(2.5/5)."""
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0], level=0.95)
        assert isinstance(ci, MeanCI)
        assert ci.mean == pytest.approx(3.0)
        assert ci.half_width == pytest.approx(2.7764451 * np.sqrt(2.5 / 5.0), abs=1e-5)
        assert ci.lo == pytest.approx(ci.mean - ci.half_width)
        assert ci.hi == pytest.approx(ci.mean + ci.half_width)
        assert ci.n == 5 and ci.level == 0.95

    def test_zero_variance_degenerates_to_a_point(self):
        ci = mean_confidence_interval([2.0, 2.0, 2.0])
        assert (ci.lo, ci.mean, ci.hi) == (2.0, 2.0, 2.0)
        assert ci.excludes_zero()

    def test_higher_level_is_wider(self):
        samples = [0.3, 1.1, -0.4, 0.8, 0.2, 0.9]
        assert (
            mean_confidence_interval(samples, level=0.99).half_width
            > mean_confidence_interval(samples, level=0.95).half_width
            > mean_confidence_interval(samples, level=0.5).half_width
        )

    def test_excludes_zero(self):
        assert mean_confidence_interval([5.0, 5.1, 4.9]).excludes_zero()
        assert not mean_confidence_interval([-1.0, 1.0, 0.5, -0.5]).excludes_zero()

    def test_coverage_is_nominal(self):
        """Monte-Carlo: the 90% t-interval covers the true mean ~90%
        of the time for tiny normal samples (the reason to use t)."""
        rng = np.random.default_rng(0)
        covered = 0
        n_rep = 2000
        for _ in range(n_rep):
            ci = mean_confidence_interval(rng.normal(1.0, 2.0, size=5), level=0.9)
            covered += ci.lo <= 1.0 <= ci.hi
        assert covered / n_rep == pytest.approx(0.9, abs=0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="level"):
            mean_confidence_interval([1.0, 2.0], level=1.0)
        with pytest.raises(ValueError, match=">= 2"):
            mean_confidence_interval([1.0])
        with pytest.raises(ValueError, match="finite"):
            mean_confidence_interval([1.0, np.nan, 2.0])


class TestWelch:
    """Two-sample Welch interval (the unpaired significance primitive)."""

    def test_matches_hand_computed_example(self):
        # a classic unequal-variance two-sample layout; reference
        # numbers computed once from the Welch-Satterthwaite formulas
        a = [27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1,
             21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4]
        b = [27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0,
             24.8, 20.2, 21.9, 22.1, 22.9, 30.5]
        ci = welch_confidence_interval(a, b)
        assert ci.mean == pytest.approx(-2.78, abs=1e-12)
        # se = 1.026672, Welch-Satterthwaite df = 26.9527,
        # t_{0.975, 26.9527} = 2.051999 -> half = 2.106730
        assert ci.half_width == pytest.approx(2.106730, abs=1e-5)
        assert ci.lo == pytest.approx(-4.886730, abs=1e-5)
        assert ci.hi == pytest.approx(-0.673270, abs=1e-5)
        assert ci.n == 29
        assert ci.excludes_zero()

    def test_one_degenerate_arm_analytic(self):
        # var_b = 0: se^2 = var_a/n_a, df = n_a - 1 exactly
        ci = welch_confidence_interval([0.0, 2.0], [5.0, 5.0, 5.0, 5.0])
        assert ci.mean == pytest.approx(-4.0)
        # se = 1, df = 1 -> half = t_{0.975, 1} = 12.7062047
        assert ci.half_width == pytest.approx(12.7062047, abs=1e-5)

    def test_equal_arms_reduce_to_pooled_df(self):
        # equal n and equal variance: df = 2n - 2, the Student case
        gen = np.random.default_rng(3)
        a = gen.normal(size=20)
        b = a + 0.5  # identical sample variance by construction
        ci = welch_confidence_interval(a, b)
        se = float(np.sqrt(2.0 * a.var(ddof=1) / 20))
        assert ci.half_width == pytest.approx(t_ppf(0.975, 38) * se, rel=1e-9)

    def test_moments_path_matches_array_path(self):
        gen = np.random.default_rng(7)
        a, b = gen.normal(1.0, 2.0, 30), gen.normal(0.5, 0.3, 12)
        from_arrays = welch_confidence_interval(a, b, level=0.9)
        from_moments = welch_ci_from_moments(
            float(a.mean()), float(a.var(ddof=1)), 30,
            float(b.mean()), float(b.var(ddof=1)), 12,
            level=0.9,
        )
        assert from_arrays == pytest.approx(from_moments)

    def test_zero_variance_both_arms_is_zero_width(self):
        ci = welch_ci_from_moments(1.5, 0.0, 10, 1.0, 0.0, 10)
        assert ci == MeanCI(0.5, 0.5, 0.5, 0.0, 0.95, 20)

    def test_coverage_is_nominal_under_behrens_fisher(self):
        """Monte-Carlo: unequal variances and unequal n — the exact
        regime where the pooled-variance t-interval undercovers and
        Welch is the fix.  Coverage must sit at the nominal level."""
        gen = np.random.default_rng(0)
        covered = 0
        n_rep = 2000
        for _ in range(n_rep):
            a = gen.normal(1.0, 10.0, size=6)   # small arm, huge variance
            b = gen.normal(0.0, 1.0, size=40)   # big arm, small variance
            ci = welch_confidence_interval(a, b, level=0.9)
            covered += ci.lo <= 1.0 <= ci.hi
        assert covered / n_rep == pytest.approx(0.9, abs=0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="level"):
            welch_ci_from_moments(0.0, 1.0, 5, 0.0, 1.0, 5, level=0.0)
        with pytest.raises(ValueError, match=">= 2"):
            welch_ci_from_moments(0.0, 1.0, 1, 0.0, 1.0, 5)
        with pytest.raises(ValueError, match="variances"):
            welch_ci_from_moments(0.0, -1.0, 5, 0.0, 1.0, 5)
        with pytest.raises(ValueError, match="means"):
            welch_ci_from_moments(float("nan"), 1.0, 5, 0.0, 1.0, 5)
        with pytest.raises(ValueError, match=">= 2"):
            welch_confidence_interval([1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="finite"):
            welch_confidence_interval([1.0, np.nan], [1.0, 2.0])

"""Tests for the §VI Divide-and-Conquer multiple-treatment extension."""

import numpy as np
import pytest

from repro.core.multi_treatment import DivideAndConquerRDRP
from repro.data.multi import MultiTreatmentRCT, multi_treatment_rct


@pytest.fixture(scope="module")
def multi_data():
    return multi_treatment_rct(n=6000, n_levels=3, d=6, random_state=0)


class TestGenerator:
    def test_shapes(self, multi_data):
        data = multi_data
        assert data.n == 6000
        assert data.n_levels == 3
        assert data.tau_r.shape == (6000, 3)
        assert data.roi.shape == (6000, 3)

    def test_levels_uniformly_assigned(self, multi_data):
        counts = np.bincount(multi_data.t, minlength=4)
        assert counts.min() > 0.8 * 6000 / 4

    def test_costs_increase_with_level(self, multi_data):
        data = multi_data
        assert np.all(data.tau_c[:, 1] > data.tau_c[:, 0])
        assert np.all(data.tau_c[:, 2] > data.tau_c[:, 1])

    def test_roi_diminishes_with_level(self, multi_data):
        """Concave dose response: higher levels return less per unit."""
        data = multi_data
        assert np.all(data.roi[:, 1] <= data.roi[:, 0] + 1e-12)
        assert np.all(data.roi[:, 2] <= data.roi[:, 1] + 1e-12)

    def test_positive_effects_every_level(self, multi_data):
        assert np.all(multi_data.tau_r > 0)
        assert np.all(multi_data.tau_c > 0)

    def test_binary_view_relabels(self, multi_data):
        view = multi_data.binary_view(2)
        assert set(np.unique(view.t)) == {0, 1}
        # ground truth columns match the requested level
        member_mask = (multi_data.t == 0) | (multi_data.t == 2)
        np.testing.assert_allclose(view.roi, multi_data.roi[member_mask, 1])

    def test_binary_view_bad_level(self, multi_data):
        with pytest.raises(ValueError, match="level"):
            multi_data.binary_view(0)
        with pytest.raises(ValueError, match="level"):
            multi_data.binary_view(4)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError, match="n_levels"):
            multi_treatment_rct(n=1000, n_levels=0)
        with pytest.raises(ValueError, match="too small"):
            multi_treatment_rct(n=20, n_levels=3)


class TestDivideAndConquer:
    @pytest.fixture(scope="class")
    def fitted(self, multi_data):
        split = multi_data.n * 2 // 3
        train = MultiTreatmentRCT(
            x=multi_data.x[:split],
            t=multi_data.t[:split],
            y_r=multi_data.y_r[:split],
            y_c=multi_data.y_c[:split],
            tau_r=multi_data.tau_r[:split],
            tau_c=multi_data.tau_c[:split],
            roi=multi_data.roi[:split],
        )
        calib = MultiTreatmentRCT(
            x=multi_data.x[split:],
            t=multi_data.t[split:],
            y_r=multi_data.y_r[split:],
            y_c=multi_data.y_c[split:],
            tau_r=multi_data.tau_r[split:],
            tau_c=multi_data.tau_c[split:],
            roi=multi_data.roi[split:],
        )
        model = DivideAndConquerRDRP(
            n_levels=3, random_state=0, hidden=16, epochs=20, mc_samples=6, n_restarts=1
        )
        model.fit(train)
        model.calibrate(calib)
        return model

    def test_predict_roi_matrix(self, fitted, multi_data):
        roi = fitted.predict_roi(multi_data.x[:100])
        assert roi.shape == (100, 3)
        assert np.all(np.isfinite(roi))

    def test_one_model_per_level(self, fitted):
        assert len(fitted.models) == 3
        forms = {m.selected_form for m in fitted.models}
        assert forms <= {"5a", "5b", "5c", "identity"}

    def test_allocation_respects_budget_and_uniqueness(self, fitted, multi_data):
        x = multi_data.x[:500]
        costs = multi_data.tau_c[:500]
        budget = 0.2 * float(costs[:, 0].sum())
        result = fitted.allocate(x, costs, budget)
        assert result.total_cost <= budget + 1e-9
        assert result.assignment.shape == (500,)
        assert set(np.unique(result.assignment)) <= {0, 1, 2, 3}
        assert result.n_treated == int(np.sum(result.assignment > 0))

    def test_allocation_beats_random_assignment(self, fitted, multi_data):
        x = multi_data.x[:1500]
        costs = multi_data.tau_c[:1500]
        rewards = multi_data.tau_r[:1500]
        budget = 0.15 * float(costs[:, 0].sum())

        result = fitted.allocate(x, costs, budget)
        model_reward = _realised_reward(result.assignment, rewards)

        rng = np.random.default_rng(0)
        random_rewards = []
        for _ in range(5):
            assignment = _random_assignment(costs, budget, rng)
            random_rewards.append(_realised_reward(assignment, rewards))
        assert model_reward > np.mean(random_rewards)

    def test_guards(self, multi_data):
        model = DivideAndConquerRDRP(n_levels=3, hidden=16, epochs=2, n_restarts=1)
        with pytest.raises(RuntimeError, match="not fitted"):
            model.calibrate(multi_data)
        with pytest.raises(RuntimeError, match="not calibrated"):
            model.predict_roi(multi_data.x[:10])

    def test_level_count_mismatch(self, multi_data):
        model = DivideAndConquerRDRP(n_levels=2, hidden=16, epochs=2, n_restarts=1)
        with pytest.raises(ValueError, match="levels"):
            model.fit(multi_data)

    def test_allocation_validation(self, fitted, multi_data):
        x = multi_data.x[:20]
        good = multi_data.tau_c[:20]
        with pytest.raises(ValueError, match="shape"):
            fitted.allocate(x, good[:, :2], budget=1.0)
        with pytest.raises(ValueError, match="positive"):
            fitted.allocate(x, good * 0.0, budget=1.0)
        with pytest.raises(ValueError, match="budget"):
            fitted.allocate(x, good, budget=-1.0)

    def test_invalid_n_levels(self):
        with pytest.raises(ValueError, match="n_levels"):
            DivideAndConquerRDRP(n_levels=0)


def _realised_reward(assignment: np.ndarray, rewards: np.ndarray) -> float:
    treated = assignment > 0
    return float(np.sum(rewards[np.nonzero(treated)[0], assignment[treated] - 1]))


def _random_assignment(costs: np.ndarray, budget: float, rng) -> np.ndarray:
    n, k = costs.shape
    assignment = np.zeros(n, dtype=np.int64)
    remaining = budget
    for user in rng.permutation(n):
        level = int(rng.integers(0, k))
        cost = float(costs[user, level])
        if cost <= remaining:
            assignment[user] = level + 1
            remaining -= cost
    return assignment

"""Tests for the RCTDataset container."""

import numpy as np
import pytest

from repro.data.rct import RCTDataset


def make_dataset(n=100, d=3, seed=0):
    rng = np.random.default_rng(seed)
    tau_c = rng.random(n) * 0.3 + 0.1
    roi = rng.random(n) * 0.8 + 0.1
    return RCTDataset(
        x=rng.normal(size=(n, d)),
        t=rng.integers(0, 2, size=n),
        y_r=(rng.random(n) < 0.3).astype(float),
        y_c=(rng.random(n) < 0.5).astype(float),
        tau_r=roi * tau_c,
        tau_c=tau_c,
        roi=roi,
        name="unit",
    )


class TestConstruction:
    def test_properties(self):
        data = make_dataset()
        assert data.n == 100
        assert data.n_features == 3
        assert data.n_treated + data.n_control == 100

    def test_default_feature_names(self):
        data = make_dataset(d=4)
        assert data.feature_names == ["f0", "f1", "f2", "f3"]

    def test_length_mismatch_rejected(self):
        base = make_dataset()
        with pytest.raises(ValueError, match="length"):
            RCTDataset(
                x=base.x,
                t=base.t[:50],
                y_r=base.y_r,
                y_c=base.y_c,
                tau_r=base.tau_r,
                tau_c=base.tau_c,
                roi=base.roi,
            )


class TestSubset:
    def test_boolean_mask(self):
        data = make_dataset()
        sub = data.subset(data.t == 1)
        assert sub.n == data.n_treated
        assert np.all(sub.t == 1)

    def test_index_array_order_preserved(self):
        data = make_dataset()
        sub = data.subset(np.array([5, 2, 9]))
        np.testing.assert_array_equal(sub.x, data.x[[5, 2, 9]])

    def test_subset_is_a_copy_view_consistent(self):
        data = make_dataset()
        sub = data.subset(np.arange(10))
        assert sub.name == data.name
        assert sub.feature_names == data.feature_names
        assert sub.feature_names is not data.feature_names  # independent list


class TestSplit:
    def test_fraction_sizes(self):
        data = make_dataset(n=200)
        a, b = data.split((0.6, 0.4), random_state=0)
        assert a.n == 120
        assert b.n == 80

    def test_disjoint(self):
        data = make_dataset(n=200)
        a, b = data.split((0.5, 0.5), random_state=0)
        rows_a = {tuple(np.round(r, 9)) for r in a.x}
        rows_b = {tuple(np.round(r, 9)) for r in b.x}
        assert not rows_a & rows_b

    def test_partial_split_allowed(self):
        data = make_dataset(n=200)
        (a,) = data.split((0.25,), random_state=0)
        assert a.n == 50

    def test_oversubscribed_rejected(self):
        data = make_dataset()
        with pytest.raises(ValueError, match="sum to <= 1"):
            data.split((0.7, 0.7))

    def test_nonpositive_fraction_rejected(self):
        data = make_dataset()
        with pytest.raises(ValueError, match="positive"):
            data.split((0.5, -0.1))

    def test_reproducible(self):
        data = make_dataset(n=200)
        a1, _ = data.split((0.5, 0.5), random_state=7)
        a2, _ = data.split((0.5, 0.5), random_state=7)
        np.testing.assert_array_equal(a1.x, a2.x)


class TestSampleFraction:
    def test_size(self):
        data = make_dataset(n=400)
        small = data.sample_fraction(0.15, random_state=0)
        assert small.n == 60

    def test_no_duplicates(self):
        data = make_dataset(n=400)
        small = data.sample_fraction(0.5, random_state=0)
        rounded = np.round(small.x, 9)
        assert np.unique(rounded, axis=0).shape[0] == small.n

    def test_invalid_fraction(self):
        data = make_dataset()
        with pytest.raises(ValueError, match="fraction"):
            data.sample_fraction(0.0)
        with pytest.raises(ValueError, match="fraction"):
            data.sample_fraction(1.5)


class TestConcat:
    def test_roundtrip_contiguous_parts(self):
        data = make_dataset(n=90)
        parts = [data.subset(np.arange(0, 30)), data.subset(np.arange(30, 90))]
        merged = RCTDataset.concat(parts)
        assert merged.n == 90
        np.testing.assert_array_equal(merged.x, data.x)
        np.testing.assert_array_equal(merged.tau_c, data.tau_c)
        assert merged.name == data.name
        assert merged.feature_names == data.feature_names

    def test_single_part_is_a_copy(self):
        data = make_dataset(n=20)
        merged = RCTDataset.concat([data])
        assert merged.n == 20
        merged.tau_c[:] = -1.0
        assert np.all(data.tau_c > 0)  # original untouched

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError, match="feature"):
            RCTDataset.concat([make_dataset(d=3), make_dataset(d=4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            RCTDataset.concat([])


class TestSummary:
    def test_keys_and_values(self):
        data = make_dataset()
        summary = data.summary()
        assert summary["name"] == "unit"
        assert summary["n"] == 100
        assert 0.0 <= summary["treated_fraction"] <= 1.0
        assert 0.0 < summary["mean_true_roi"] < 1.0

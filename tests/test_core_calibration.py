"""Tests for the heuristic calibration forms and their selection."""

import numpy as np
import pytest

from repro.core.calibration import (
    CALIBRATION_FORMS,
    HeuristicCalibration,
    apply_form,
    combine_point_and_std,
)


@pytest.fixture
def toy_inputs():
    rng = np.random.default_rng(0)
    roi_hat = rng.random(300) * 0.8 + 0.1
    r = rng.random(300) * 0.05 + 0.01
    return roi_hat, r


class TestForms:
    def test_5a_formula(self, toy_inputs):
        roi_hat, r = toy_inputs
        out = apply_form("5a", roi_hat, r, q_hat=2.0)
        np.testing.assert_allclose(out, roi_hat * (roi_hat + 2.0 * r))

    def test_5b_formula(self, toy_inputs):
        roi_hat, r = toy_inputs
        out = apply_form("5b", roi_hat, r, q_hat=2.0)
        np.testing.assert_allclose(out, roi_hat / (2.0 * r))

    def test_5c_formula(self, toy_inputs):
        roi_hat, r = toy_inputs
        out = apply_form("5c", roi_hat, r, q_hat=2.0)
        np.testing.assert_allclose(out, roi_hat + 2.0 * r)

    def test_identity(self, toy_inputs):
        roi_hat, r = toy_inputs
        np.testing.assert_array_equal(apply_form("identity", roi_hat, r, 5.0), roi_hat)

    def test_5b_zero_q_guarded(self, toy_inputs):
        roi_hat, r = toy_inputs
        out = apply_form("5b", roi_hat, r, q_hat=0.0)
        assert np.all(np.isfinite(out))

    def test_unknown_form(self, toy_inputs):
        roi_hat, r = toy_inputs
        with pytest.raises(ValueError, match="Unknown calibration form"):
            apply_form("5z", roi_hat, r, 1.0)

    def test_negative_q_rejected(self, toy_inputs):
        roi_hat, r = toy_inputs
        with pytest.raises(ValueError, match="q_hat"):
            apply_form("5c", roi_hat, r, -1.0)

    def test_registry_contents(self):
        assert set(CALIBRATION_FORMS) == {"5a", "5b", "5c", "identity"}


class TestCombinePointAndStd:
    def test_add(self):
        out = combine_point_and_std(np.array([0.5]), np.array([0.1]), how="add")
        assert out[0] == pytest.approx(0.6)

    def test_mean(self):
        out = combine_point_and_std(np.array([0.5]), np.array([0.1]), how="mean")
        assert out[0] == pytest.approx(0.5)

    def test_invalid_how(self):
        with pytest.raises(ValueError, match="how"):
            combine_point_and_std(np.array([0.5]), np.array([0.1]), how="median")


class TestHeuristicCalibration:
    def _rct(self, n=1200, seed=0):
        rng = np.random.default_rng(seed)
        roi = rng.random(n) * 0.6 + 0.2
        t = rng.integers(0, 2, size=n)
        tau_c = 0.4
        y_c = (rng.random(n) < 0.3 + tau_c * t).astype(float)
        y_r = (rng.random(n) < 0.2 + roi * tau_c * t).astype(float)
        return roi, t, y_r, y_c

    def test_identity_selected_for_uninformative_noise_std(self):
        """When r(x) is pure noise, the selector must keep the raw estimate."""
        roi, t, y_r, y_c = self._rct()
        rng = np.random.default_rng(1)
        roi_hat = roi + 0.05 * rng.normal(size=roi.shape[0])  # good point estimate
        r = 0.5 * rng.random(roi.shape[0]) + 0.1  # uninformative noise
        calib = HeuristicCalibration(random_state=0)
        chosen = calib.select(roi_hat, r, q_hat=2.0, t=t, y_r=y_r, y_c=y_c)
        assert chosen == "identity"

    def test_transform_before_select_raises(self):
        calib = HeuristicCalibration()
        with pytest.raises(RuntimeError, match="select"):
            calib.transform(np.array([0.5]), np.array([0.1]), 1.0)

    def test_transform_applies_selected_form(self):
        roi, t, y_r, y_c = self._rct(n=600)
        rng = np.random.default_rng(2)
        roi_hat = roi + 0.05 * rng.normal(size=600)
        r = np.full(600, 0.05)
        calib = HeuristicCalibration(candidate_forms=("5c",), random_state=0)
        calib.select(roi_hat, r, 1.0, t, y_r, y_c)
        assert calib.selected_form_ == "5c"
        out = calib.transform(roi_hat, r, 1.0)
        np.testing.assert_allclose(out, roi_hat + r)

    def test_selection_scores_populated(self):
        roi, t, y_r, y_c = self._rct(n=600)
        roi_hat = roi.copy()
        r = np.full(600, 0.02)
        calib = HeuristicCalibration(random_state=0)
        calib.select(roi_hat, r, 1.0, t, y_r, y_c)
        assert set(calib.selection_scores_) == {"5a", "5b", "5c", "identity"}

    def test_small_calibration_set_defaults_to_identity(self):
        roi, t, y_r, y_c = self._rct(n=100)
        calib = HeuristicCalibration(random_state=0)
        chosen = calib.select(roi, np.full(100, 0.05), 1.0, t, y_r, y_c)
        assert chosen == "identity"

    def test_invalid_forms(self):
        with pytest.raises(ValueError, match="Unknown calibration forms"):
            HeuristicCalibration(candidate_forms=("5a", "bogus"))
        with pytest.raises(ValueError, match="not be empty"):
            HeuristicCalibration(candidate_forms=())

    def test_invalid_margin(self):
        with pytest.raises(ValueError, match="selection_margin"):
            HeuristicCalibration(selection_margin=-0.1)

    def test_no_bootstrap_single_shot_mode(self):
        roi, t, y_r, y_c = self._rct(n=600)
        calib = HeuristicCalibration(n_bootstrap=0, random_state=0)
        chosen = calib.select(roi, np.full(600, 0.05), 1.0, t, y_r, y_c)
        assert chosen in CALIBRATION_FORMS

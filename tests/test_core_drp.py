"""Tests for the DRP model and its Eq. 2 loss."""

import numpy as np
import pytest

from repro.core.drp import (
    DRPModel,
    drp_loss,
    drp_loss_gradient,
    drp_pooled_derivative,
)
from repro.nn.activations import sigmoid


class TestDrpLoss:
    def test_stable_at_extreme_scores(self):
        t = np.array([1, 0, 1, 0])
        y_r = np.array([1.0, 0.0, 1.0, 0.0])
        y_c = np.array([1.0, 1.0, 1.0, 1.0])
        for s_value in (-1e4, 1e4):
            value = drp_loss(np.full(4, s_value), t, y_r, y_c)
            assert np.isfinite(value)
            grad = drp_loss_gradient(np.full(4, s_value), t, y_r, y_c)
            assert np.all(np.isfinite(grad))

    def test_pooled_minimum_at_roi(self):
        """The pooled loss over a shared s is minimised at sigma(s) = tau_r/tau_c."""
        rng = np.random.default_rng(0)
        n = 20000
        t = rng.integers(0, 2, size=n)
        # tau_r = 0.3*0.5, tau_c = 0.5 -> roi = 0.3
        y_c = 0.2 + 0.5 * t + 0.05 * rng.normal(size=n)
        y_r = 0.1 + 0.15 * t + 0.05 * rng.normal(size=n)
        roi_grid = np.linspace(0.05, 0.95, 91)
        losses = [
            drp_loss(np.full(n, np.log(r / (1 - r))), t, y_r, y_c) for r in roi_grid
        ]
        best = roi_grid[int(np.argmin(losses))]
        assert best == pytest.approx(0.3, abs=0.03)

    def test_pooled_derivative_sign_change(self):
        rng = np.random.default_rng(1)
        n = 5000
        t = rng.integers(0, 2, size=n)
        y_c = 0.2 + 0.4 * t + 0.05 * rng.normal(size=n)
        y_r = 0.1 + 0.2 * t + 0.05 * rng.normal(size=n)  # roi = 0.5
        low = drp_pooled_derivative(0.1, t, y_r, y_c)
        high = drp_pooled_derivative(0.9, t, y_r, y_c)
        assert low < 0 < high

    def test_pooled_derivative_monotone(self):
        rng = np.random.default_rng(2)
        n = 2000
        t = rng.integers(0, 2, size=n)
        y_c = 0.1 + 0.5 * t + 0.05 * rng.normal(size=n)
        y_r = 0.05 + 0.25 * t + 0.05 * rng.normal(size=n)
        grid = np.linspace(0.01, 0.99, 50)
        values = [drp_pooled_derivative(r, t, y_r, y_c) for r in grid]
        assert np.all(np.diff(values) > 0)

    def test_single_arm_derivative_rejected(self):
        with pytest.raises(ValueError, match="treated and control"):
            drp_pooled_derivative(0.5, np.ones(10), np.ones(10), np.ones(10))


class TestDRPModel:
    def test_fit_predict_shapes(self, easy_rct):
        data = easy_rct
        model = DRPModel(hidden=16, epochs=10, n_restarts=1, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        roi = model.predict_roi(data.x[:50])
        assert roi.shape == (50,)
        assert np.all((roi > 0) & (roi < 1))

    def test_learns_roi_ranking(self, easy_rct):
        data = easy_rct
        model = DRPModel(hidden=32, epochs=60, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        pred = model.predict_roi(data.x)
        assert np.corrcoef(pred, data.roi)[0, 1] > 0.4

    def test_mc_dropout_outputs(self, easy_rct):
        data = easy_rct
        model = DRPModel(hidden=16, epochs=10, dropout=0.3, n_restarts=1, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        mean, std = model.predict_roi_mc(data.x[:40], n_samples=15)
        assert mean.shape == std.shape == (40,)
        assert np.all(std > 0)
        assert np.all((mean > 0) & (mean < 1))

    def test_score_and_roi_consistent(self, easy_rct):
        data = easy_rct
        model = DRPModel(hidden=16, epochs=5, n_restarts=2, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        s = model.predict_score(data.x[:10])
        np.testing.assert_allclose(model.predict_roi(data.x[:10]), sigmoid(s))

    def test_restart_ensemble_trains_all(self, easy_rct):
        data = easy_rct
        model = DRPModel(hidden=16, epochs=5, n_restarts=3, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        assert len(model.networks_) == 3
        assert len(model.histories_) == 3

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DRPModel().predict_roi(np.ones((1, 4)))

    def test_single_arm_rejected(self):
        x = np.random.default_rng(0).normal(size=(60, 3))
        with pytest.raises(ValueError, match="treated and control"):
            DRPModel(epochs=2).fit(x, np.ones(60, dtype=int), np.ones(60), np.ones(60))

    def test_feature_mismatch(self, tiny_rct):
        data = tiny_rct
        model = DRPModel(hidden=16, epochs=3, n_restarts=1, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        with pytest.raises(ValueError, match="features"):
            model.predict_roi(np.ones((2, 9)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DRPModel(hidden=2)
        with pytest.raises(ValueError):
            DRPModel(dropout=1.0)
        with pytest.raises(ValueError):
            DRPModel(val_fraction=0.7)
        with pytest.raises(ValueError):
            DRPModel(n_restarts=0)

    def test_mc_samples_validation(self, tiny_rct):
        data = tiny_rct
        model = DRPModel(hidden=16, epochs=2, n_restarts=1, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        with pytest.raises(ValueError, match="n_samples"):
            model.predict_roi_mc(data.x[:5], n_samples=1)

    def test_reproducible(self, tiny_rct):
        data = tiny_rct
        a = DRPModel(hidden=16, epochs=5, n_restarts=1, random_state=3)
        a.fit(data.x, data.t, data.y_r, data.y_c)
        b = DRPModel(hidden=16, epochs=5, n_restarts=1, random_state=3)
        b.fit(data.x, data.t, data.y_r, data.y_c)
        np.testing.assert_allclose(a.predict_roi(data.x), b.predict_roi(data.x))

"""Tests for the neural uplift models (TARNet, DragonNet, OffsetNet, SNet)."""

import numpy as np
import pytest

from repro.causal.neural import DragonNet, OffsetNet, SNet, TARNet

# every test here trains a network; PR CI skips them (-m "not slow")
pytestmark = pytest.mark.slow


def strong_effect_rct(n=2500, seed=0):
    """tau(x) = 1 + x0 > 0; mu0 = 0.5*x1."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-0.8, 0.8, size=(n, 4))
    t = rng.integers(0, 2, size=n)
    tau = 1.0 + x[:, 0]
    y = 0.5 * x[:, 1] + tau * t + 0.25 * rng.normal(size=n)
    return x, y, t, tau


FAST = dict(epochs=40, hidden=16, learning_rate=3e-3, random_state=0)


@pytest.mark.parametrize("model_cls", [TARNet, DragonNet, OffsetNet, SNet])
class TestCommonBehaviour:
    def test_learns_average_effect(self, model_cls):
        x, y, t, tau = strong_effect_rct()
        model = model_cls(**FAST).fit(x, y, t)
        pred = model.predict_uplift(x)
        assert pred.mean() == pytest.approx(tau.mean(), abs=0.25)

    def test_ranks_heterogeneous_effect(self, model_cls):
        x, y, t, tau = strong_effect_rct()
        model = model_cls(**FAST).fit(x, y, t)
        pred = model.predict_uplift(x)
        assert np.corrcoef(pred, tau)[0, 1] > 0.5

    def test_loss_history_decreases(self, model_cls):
        x, y, t, _ = strong_effect_rct(n=1000)
        model = model_cls(**FAST).fit(x, y, t)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_predict_before_fit(self, model_cls):
        with pytest.raises(RuntimeError, match="not fitted"):
            model_cls().predict_uplift(np.ones((1, 4)))

    def test_feature_mismatch(self, model_cls):
        x, y, t, _ = strong_effect_rct(n=600)
        model = model_cls(**FAST).fit(x, y, t)
        with pytest.raises(ValueError, match="features"):
            model.predict_uplift(np.ones((2, 7)))

    def test_outcomes_consistent_with_uplift(self, model_cls):
        x, y, t, _ = strong_effect_rct(n=600)
        model = model_cls(**FAST).fit(x, y, t)
        mu0, mu1 = model.predict_outcomes(x)
        np.testing.assert_allclose(mu1 - mu0, model.predict_uplift(x), atol=1e-9)

    def test_single_arm_rejected(self, model_cls):
        x = np.random.default_rng(0).normal(size=(80, 4))
        y = np.random.default_rng(1).normal(size=80)
        with pytest.raises(ValueError, match="treated and control"):
            model_cls(**FAST).fit(x, y, np.ones(80, dtype=int))

    def test_invalid_hyperparameters(self, model_cls):
        with pytest.raises(ValueError):
            model_cls(hidden=0)
        with pytest.raises(ValueError):
            model_cls(epochs=0)


class TestDragonNetSpecific:
    def test_propensity_near_assignment_rate(self):
        x, y, t, _ = strong_effect_rct()
        model = DragonNet(**FAST).fit(x, y, t)
        g = model.predict_propensity(x)
        # under RCT the propensity head converges to the treated fraction
        assert g.mean() == pytest.approx(t.mean(), abs=0.1)
        assert np.all((g > 0) & (g < 1))

    def test_targeted_regularisation_off(self):
        x, y, t, _ = strong_effect_rct(n=800)
        model = DragonNet(targeted_weight=0.0, **FAST).fit(x, y, t)
        assert np.isfinite(model.predict_uplift(x)).all()

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            DragonNet(propensity_weight=-1.0)


class TestOffsetNetSpecific:
    def test_uplift_is_offset_head(self):
        x, y, t, _ = strong_effect_rct(n=600)
        model = OffsetNet(**FAST).fit(x, y, t)
        mu0, mu1 = model.predict_outcomes(x)
        np.testing.assert_allclose(model.predict_uplift(x), mu1 - mu0, atol=1e-9)


class TestSNetSpecific:
    def test_three_representations_built(self):
        x, y, t, _ = strong_effect_rct(n=600)
        model = SNet(**FAST).fit(x, y, t)
        assert len(model._networks) == 6  # 3 reprs + 2 heads + propensity

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticRCTConfig, generate_rct


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def easy_rct():
    """A small, high-SNR RCT sample with strong heterogeneity.

    Base rates and effects are large so shallow models can learn the
    ranking from ~2000 rows — keeps model tests fast and reliable.
    """
    gen = np.random.default_rng(777)
    n, d = 2400, 6
    x = gen.normal(size=(n, d))
    config = SyntheticRCTConfig(
        roi_low=0.05,
        roi_high=0.95,
        cost_low=0.2,
        cost_high=0.5,
        base_cost_rate=0.4,
        base_revenue_rate=0.3,
        p_treat=0.5,
        noise_scale=0.1,
    )
    return generate_rct(n, x, config, random_state=gen, name="easy")


@pytest.fixture
def tiny_rct():
    """A very small RCT sample for shape/error-path tests."""
    gen = np.random.default_rng(99)
    n, d = 300, 4
    x = gen.normal(size=(n, d))
    config = SyntheticRCTConfig()
    return generate_rct(n, x, config, random_state=gen, name="tiny")

"""Tests for repro.nn.mc_dropout."""

import numpy as np
import pytest

from repro.nn.activations import sigmoid
from repro.nn.mc_dropout import MCDropoutPredictor, mc_dropout_statistics
from repro.nn.network import mlp


@pytest.fixture
def dropout_net():
    return mlp(3, [32], dropout=0.3, rng=0)


class TestMcDropoutStatistics:
    def test_shapes(self, dropout_net):
        x = np.random.default_rng(0).normal(size=(7, 3))
        mean, std = mc_dropout_statistics(dropout_net.forward_stochastic, x, n_samples=10)
        assert mean.shape == (7,)
        assert std.shape == (7,)

    def test_std_positive_with_dropout(self, dropout_net):
        x = np.random.default_rng(0).normal(size=(5, 3))
        _, std = mc_dropout_statistics(dropout_net.forward_stochastic, x, n_samples=20)
        assert np.all(std > 0)
        assert np.any(std > 1e-5)  # genuinely varying, not just the floor

    def test_std_floor_without_dropout(self):
        net = mlp(3, [8], dropout=0.0, rng=0)
        x = np.ones((4, 3))
        _, std = mc_dropout_statistics(
            net.forward_stochastic, x, n_samples=10, std_floor=1e-6
        )
        np.testing.assert_allclose(std, 1e-6)

    def test_mean_close_to_deterministic(self, dropout_net):
        x = np.random.default_rng(1).normal(size=(6, 3))
        mean, _ = mc_dropout_statistics(dropout_net.forward_stochastic, x, n_samples=400)
        deterministic = dropout_net.predict(x)[:, 0]
        # inverted dropout preserves expectation
        np.testing.assert_allclose(mean, deterministic, atol=0.3)

    def test_transform_applied_per_pass(self, dropout_net):
        x = np.random.default_rng(2).normal(size=(5, 3))
        mean, _ = mc_dropout_statistics(
            dropout_net.forward_stochastic, x, n_samples=10, transform=sigmoid
        )
        assert np.all((mean > 0) & (mean < 1))

    def test_n_samples_validation(self, dropout_net):
        with pytest.raises(ValueError, match="n_samples"):
            mc_dropout_statistics(dropout_net.forward_stochastic, np.ones((2, 3)), n_samples=1)

    def test_std_floor_validation(self, dropout_net):
        with pytest.raises(ValueError, match="std_floor"):
            mc_dropout_statistics(
                dropout_net.forward_stochastic, np.ones((2, 3)), std_floor=0.0
            )

    def test_multi_output_shapes(self):
        net = mlp(3, [8], output_dim=2, dropout=0.2, rng=0)
        mean, std = mc_dropout_statistics(net.forward_stochastic, np.ones((4, 3)), n_samples=5)
        assert mean.shape == (4, 2)
        assert std.shape == (4, 2)


class TestMCDropoutPredictor:
    def test_callable(self, dropout_net):
        predictor = MCDropoutPredictor(dropout_net, transform=sigmoid, n_samples=10)
        mean, std = predictor(np.ones((3, 3)))
        assert mean.shape == std.shape == (3,)
        assert np.all((mean > 0) & (mean < 1))
        assert np.all(std > 0)

"""Tests for repro.nn.activations, including numerical-stability properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.activations import (
    elu,
    elu_grad,
    identity,
    log_sigmoid,
    relu,
    relu_grad,
    sigmoid,
    sigmoid_grad,
    softmax,
    softplus,
    tanh,
    tanh_grad,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)

    def test_known_value(self):
        assert sigmoid(np.array(1.0)) == pytest.approx(1 / (1 + np.exp(-1)))

    def test_extreme_positive_no_overflow(self):
        assert sigmoid(np.array(1000.0)) == pytest.approx(1.0)

    def test_extreme_negative_no_overflow(self):
        assert sigmoid(np.array(-1000.0)) == pytest.approx(0.0)

    @given(finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_in_unit_interval(self, x):
        v = float(sigmoid(np.array(x)))
        assert 0.0 <= v <= 1.0

    @given(finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, x):
        a = float(sigmoid(np.array(x)))
        b = float(sigmoid(np.array(-x)))
        assert a + b == pytest.approx(1.0, abs=1e-12)

    def test_gradient_matches_finite_difference(self):
        xs = np.linspace(-4, 4, 17)
        eps = 1e-6
        numeric = (sigmoid(xs + eps) - sigmoid(xs - eps)) / (2 * eps)
        np.testing.assert_allclose(sigmoid_grad(xs), numeric, atol=1e-7)


class TestSoftplus:
    def test_at_zero(self):
        assert softplus(np.array(0.0)) == pytest.approx(np.log(2.0))

    def test_large_positive_is_linear(self):
        assert softplus(np.array(800.0)) == pytest.approx(800.0)

    def test_large_negative_is_zero(self):
        assert softplus(np.array(-800.0)) == pytest.approx(0.0, abs=1e-12)

    @given(finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_above_relu(self, x):
        assert float(softplus(np.array(x))) >= max(x, 0.0) - 1e-9

    @given(st.floats(min_value=-30, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_formula_in_safe_range(self, x):
        assert float(softplus(np.array(x))) == pytest.approx(np.log1p(np.exp(x)), rel=1e-9)


class TestLogSigmoid:
    @given(finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_nonpositive(self, x):
        assert float(log_sigmoid(np.array(x))) <= 1e-12

    def test_identity_with_softplus(self):
        xs = np.linspace(-20, 20, 9)
        np.testing.assert_allclose(log_sigmoid(xs), -softplus(-xs))


class TestReluElu:
    def test_relu_values(self):
        np.testing.assert_array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        np.testing.assert_array_equal(relu_grad(np.array([-1.0, 0.5])), [0.0, 1.0])

    def test_elu_positive_is_identity(self):
        np.testing.assert_allclose(elu(np.array([0.5, 2.0])), [0.5, 2.0])

    def test_elu_negative_saturates(self):
        assert float(elu(np.array(-100.0))) == pytest.approx(-1.0)

    def test_elu_grad_continuous_at_zero(self):
        assert float(elu_grad(np.array(1e-9))) == pytest.approx(1.0, abs=1e-6)
        assert float(elu_grad(np.array(-1e-9))) == pytest.approx(1.0, abs=1e-6)

    def test_elu_no_overflow_large_negative(self):
        out = elu(np.array(-1e6))
        assert np.isfinite(out)


class TestTanhIdentity:
    def test_tanh_grad(self):
        xs = np.linspace(-3, 3, 7)
        eps = 1e-6
        numeric = (tanh(xs + eps) - tanh(xs - eps)) / (2 * eps)
        np.testing.assert_allclose(tanh_grad(xs), numeric, atol=1e-7)

    def test_identity(self):
        x = np.array([1.0, -2.0])
        np.testing.assert_array_equal(identity(x), x)


class TestSoftmax:
    def test_sums_to_one(self):
        out = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert out.sum() == pytest.approx(1.0)

    def test_stability_large_values(self):
        out = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(out))
        assert out.sum() == pytest.approx(1.0)

    def test_shift_invariance(self):
        x = np.array([0.1, 0.5, -0.3])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

"""Tests for the meta-learner uplift models (S-, T-, X-learner)."""

import numpy as np
import pytest

from repro.causal.meta import SLearner, TLearner, XLearner
from repro.linear import RidgeRegression


def linear_effect_rct(n=3000, seed=0):
    """tau(x) = 1 + x0 (always positive); mu0 = x1."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-0.8, 0.8, size=(n, 3))
    t = rng.integers(0, 2, size=n)
    tau = 1.0 + x[:, 0]
    y = x[:, 1] + tau * t + 0.2 * rng.normal(size=n)
    return x, y, t, tau


def ridge_factory():
    return RidgeRegression(alpha=1e-3)


@pytest.mark.parametrize("learner_cls", [SLearner, TLearner, XLearner])
class TestCommonBehaviour:
    def test_recovers_average_effect(self, learner_cls):
        x, y, t, tau = linear_effect_rct()
        model = learner_cls(base_factory=ridge_factory).fit(x, y, t)
        pred = model.predict_uplift(x)
        assert pred.mean() == pytest.approx(tau.mean(), abs=0.1)

    def test_ranks_heterogeneous_effect(self, learner_cls):
        if learner_cls is SLearner:
            # a purely linear S-learner over [X, t] has no interaction
            # term, so its uplift is constant by construction — the
            # heterogeneity test for SLearner uses a forest base below
            pytest.skip("linear S-learner cannot express heterogeneity")
        x, y, t, tau = linear_effect_rct()
        model = learner_cls(base_factory=ridge_factory).fit(x, y, t)
        pred = model.predict_uplift(x)
        assert np.corrcoef(pred, tau)[0, 1] > 0.7

    def test_predict_before_fit(self, learner_cls):
        with pytest.raises(RuntimeError, match="not fitted"):
            learner_cls().predict_uplift(np.ones((1, 3)))

    def test_single_arm_rejected(self, learner_cls):
        x = np.random.default_rng(0).normal(size=(50, 2))
        y = np.random.default_rng(1).normal(size=50)
        with pytest.raises(ValueError, match="treated and control"):
            learner_cls().fit(x, y, np.zeros(50, dtype=int))

    def test_feature_mismatch_raises(self, learner_cls):
        x, y, t, _ = linear_effect_rct(n=400)
        model = learner_cls(base_factory=ridge_factory).fit(x, y, t)
        with pytest.raises(ValueError, match="features"):
            model.predict_uplift(np.ones((2, 5)))


class TestSLearnerSpecific:
    def test_outcome_heads_differ_by_effect(self):
        x, y, t, tau = linear_effect_rct()
        model = SLearner(base_factory=ridge_factory).fit(x, y, t)
        mu0, mu1 = model.predict_outcomes(x)
        np.testing.assert_allclose(mu1 - mu0, model.predict_uplift(x))

    @pytest.mark.slow
    def test_default_forest_base(self):
        x, y, t, _ = linear_effect_rct(n=600)
        model = SLearner(random_state=0).fit(x, y, t)
        assert model.predict_uplift(x).shape == (600,)

    @pytest.mark.slow
    def test_forest_base_finds_heterogeneity(self):
        x, y, t, tau = linear_effect_rct(n=4000)
        model = SLearner(random_state=0).fit(x, y, t)
        pred = model.predict_uplift(x)
        assert np.corrcoef(pred, tau)[0, 1] > 0.2


class TestTLearnerSpecific:
    def test_per_arm_models_fit_their_arm(self):
        x, y, t, _ = linear_effect_rct()
        model = TLearner(base_factory=ridge_factory).fit(x, y, t)
        mu0, mu1 = model.predict_outcomes(x)
        # control model should approximate mu0 = x1
        assert np.corrcoef(mu0, x[:, 1])[0, 1] > 0.9


class TestXLearnerSpecific:
    def test_propensity_estimated_from_data(self):
        x, y, t, _ = linear_effect_rct()
        model = XLearner(base_factory=ridge_factory).fit(x, y, t)
        assert model.propensity_ == pytest.approx(t.mean(), abs=1e-9)

    def test_fixed_propensity_honoured(self):
        x, y, t, _ = linear_effect_rct(n=500)
        model = XLearner(base_factory=ridge_factory, propensity=0.3).fit(x, y, t)
        assert model.propensity_ == 0.3

    def test_invalid_propensity(self):
        with pytest.raises(ValueError, match="propensity"):
            XLearner(propensity=1.5)

    def test_outcomes_come_from_stage1(self):
        x, y, t, _ = linear_effect_rct(n=500)
        model = XLearner(base_factory=ridge_factory).fit(x, y, t)
        mu0, mu1 = model.predict_outcomes(x)
        assert mu0.shape == mu1.shape == (500,)

"""Tests for Algorithm 1 (greedy C-BTAP allocation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    greedy_allocation,
    greedy_allocation_by_roi,
    spend_down_prefix,
)


class TestSpendDownPrefix:
    def test_planning_vs_realisation_semantics(self):
        costs = np.array([1.0, 1.0, 1.0])
        # planning: an item that exactly exhausts B is still affordable
        k, cum = spend_down_prefix(costs, 2.0)
        assert k == 2
        np.testing.assert_array_equal(cum, [1.0, 2.0, 3.0])
        # realisation: stop before the draw that reaches B
        k, _ = spend_down_prefix(costs, 2.0, stop_before_crossing=True)
        assert k == 1

    def test_exact_boundary(self):
        costs = np.array([1.0, 1.0, 1.0])
        assert spend_down_prefix(costs, 3.0)[0] == 3
        assert spend_down_prefix(costs, 3.0, stop_before_crossing=True)[0] == 2

    def test_zero_budget(self):
        costs = np.array([0.0, 0.0, 1.0])
        # planning admits the free items; realisation admits nobody
        assert spend_down_prefix(costs, 0.0)[0] == 2
        assert spend_down_prefix(costs, 0.0, stop_before_crossing=True)[0] == 0

    def test_budget_beyond_total(self):
        costs = np.array([0.5, 0.5])
        assert spend_down_prefix(costs, 10.0)[0] == 2
        assert spend_down_prefix(costs, 10.0, stop_before_crossing=True)[0] == 2

    def test_bool_costs_cumsum_as_float(self):
        k, cum = spend_down_prefix(np.array([True, False, True]), 1.5, stop_before_crossing=True)
        assert cum.dtype == np.float64
        assert k == 2  # spend 1.0 < 1.5; the next paying draw would cross


class TestGreedyAllocation:
    def test_budget_respected(self):
        rng = np.random.default_rng(0)
        scores = rng.random(100)
        costs = rng.random(100) * 0.5 + 0.1
        result = greedy_allocation(scores, costs, budget=5.0)
        assert result.total_cost <= 5.0 + 1e-12

    def test_highest_scores_selected_first(self):
        scores = np.array([0.9, 0.5, 0.1])
        costs = np.array([1.0, 1.0, 1.0])
        result = greedy_allocation(scores, costs, budget=2.0)
        np.testing.assert_array_equal(result.selected, [True, True, False])

    def test_skips_unaffordable_continues_scan(self):
        scores = np.array([0.9, 0.8, 0.7])
        costs = np.array([10.0, 1.0, 1.0])
        result = greedy_allocation(scores, costs, budget=2.0)
        np.testing.assert_array_equal(result.selected, [False, True, True])

    def test_zero_budget_selects_nobody(self):
        result = greedy_allocation(np.array([0.5]), np.array([1.0]), budget=0.0)
        assert result.n_selected == 0

    def test_rewards_reported(self):
        scores = np.array([0.9, 0.1])
        costs = np.array([1.0, 1.0])
        rewards = np.array([0.5, 0.2])
        result = greedy_allocation(scores, costs, budget=1.0, rewards=rewards)
        assert result.total_reward == pytest.approx(0.5)

    def test_reward_nan_when_absent(self):
        result = greedy_allocation(np.array([0.5]), np.array([1.0]), budget=1.0)
        assert np.isnan(result.total_reward)

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            greedy_allocation(np.array([0.5]), np.array([0.0]), budget=1.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            greedy_allocation(np.array([0.5]), np.array([1.0]), budget=-1.0)

    def test_nan_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            greedy_allocation(np.array([0.5]), np.array([1.0]), budget=float("nan"))

    @given(st.integers(min_value=1, max_value=60), st.floats(min_value=0, max_value=30))
    @settings(max_examples=40, deadline=None)
    def test_feasibility_property(self, n, budget):
        rng = np.random.default_rng(n)
        scores = rng.random(n)
        costs = rng.random(n) + 0.1
        result = greedy_allocation(scores, costs, budget)
        assert result.total_cost <= budget + 1e-9
        assert result.n_selected == int(result.selected.sum())

    @given(st.floats(min_value=0.1, max_value=10), st.floats(min_value=0.5, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_scale_invariance(self, budget, scale):
        """Scaling all costs and the budget together changes nothing.

        (Note: selection count is *not* monotone in the budget for
        skip-and-continue greedy — a larger budget can admit one
        expensive item in place of several cheap ones — so the natural
        monotonicity property is intentionally absent here.)
        """
        rng = np.random.default_rng(17)
        scores = rng.random(40)
        costs = rng.random(40) + 0.1
        base = greedy_allocation(scores, costs, budget)
        scaled = greedy_allocation(scores, costs * scale, budget * scale)
        np.testing.assert_array_equal(base.selected, scaled.selected)


def _reference_scan(scores, costs, budget):
    """The original per-item skip-and-continue scan, as ground truth.

    Accumulated-spend form (``spent + c <= budget``): sequential
    additions match the implementation's cumsum bit-for-bit, so an
    exact-boundary budget (e.g. ``budget == np.sum(costs)``) cannot
    flip a decision through subtractive rounding.
    """
    order = np.argsort(-scores, kind="stable")
    selected = np.zeros(scores.shape[0], dtype=bool)
    spent = 0.0
    for i in order:
        c = float(costs[i])
        if spent + c <= budget:
            selected[i] = True
            spent += c
    return selected


class TestCumsumFastPath:
    def test_fast_path_hit_on_sorted_fitting_inputs(self):
        scores = np.linspace(1.0, 0.0, 100)
        costs = np.ones(100)
        result = greedy_allocation(scores, costs, budget=50.0)
        assert result.path == "fast_path"
        assert result.n_selected == 50
        np.testing.assert_array_equal(result.selected[:50], True)

    def test_scan_fallback_when_skipping_pays(self):
        scores = np.array([0.9, 0.8, 0.7])
        costs = np.array([10.0, 1.0, 1.0])
        result = greedy_allocation(scores, costs, budget=2.0)
        assert result.path == "scan_fallback"
        np.testing.assert_array_equal(result.selected, [False, True, True])

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=0.0, max_value=1.2),
    )
    @settings(max_examples=50, deadline=None)
    def test_equivalent_to_reference_scan(self, seed, budget_frac):
        """Fast path + fallback reproduce the per-item scan exactly."""
        gen = np.random.default_rng(seed)
        n = int(gen.integers(1, 120))
        scores = gen.random(n)
        costs = gen.random(n) * 2.0 + 0.05
        budget = budget_frac * float(np.sum(costs))
        result = greedy_allocation(scores, costs, budget)
        np.testing.assert_array_equal(
            result.selected, _reference_scan(scores, costs, budget)
        )


class TestGreedyByRoi:
    def test_equivalent_to_manual_division(self):
        rng = np.random.default_rng(1)
        tau_r = rng.random(50) * 0.5
        tau_c = rng.random(50) * 0.5 + 0.1
        by_roi = greedy_allocation_by_roi(tau_r, tau_c, budget=3.0)
        manual = greedy_allocation(tau_r / tau_c, tau_c, budget=3.0, rewards=tau_r)
        np.testing.assert_array_equal(by_roi.selected, manual.selected)
        assert by_roi.total_reward == pytest.approx(manual.total_reward)

    def test_nonpositive_tau_c_rejected(self):
        with pytest.raises(ValueError, match="tau_c"):
            greedy_allocation_by_roi(np.array([0.1]), np.array([-0.5]), budget=1.0)

    def test_greedy_beats_random_in_reward(self):
        rng = np.random.default_rng(2)
        n = 400
        tau_c = rng.random(n) * 0.4 + 0.1
        roi = rng.random(n)
        tau_r = roi * tau_c
        budget = 0.25 * tau_c.sum()
        greedy = greedy_allocation_by_roi(tau_r, tau_c, budget)
        random_order = greedy_allocation(rng.random(n), tau_c, budget, rewards=tau_r)
        assert greedy.total_reward > random_order.total_reward

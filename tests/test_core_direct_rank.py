"""Tests for the Direct Rank (DR) baseline."""

import numpy as np
import pytest

from repro.core.direct_rank import DirectRank, dr_loss


class TestDrLoss:
    def test_finite_at_extremes(self):
        t = np.array([1, 0, 1, 0])
        y_r = np.array([1.0, 0.0, 1.0, 0.0])
        y_c = np.ones(4)
        for s_val in (-1e3, 0.0, 1e3):
            value, grad = dr_loss(np.full(4, s_val), t, y_r, y_c)
            assert np.isfinite(value)
            assert np.all(np.isfinite(grad))

    def test_loss_prefers_selecting_high_roi(self):
        """Soft-selecting the high-ROI individual yields a lower loss."""
        t = np.array([1, 0, 1, 0])
        y_r = np.array([1.0, 0.0, 0.1, 0.0])  # individual 0 drives reward
        y_c = np.array([0.5, 0.0, 0.9, 0.0])  # individual 2 is expensive
        select_good = np.array([5.0, 0.0, -5.0, 0.0])
        select_bad = np.array([-5.0, 0.0, 5.0, 0.0])
        value_good, _ = dr_loss(select_good, t, y_r, y_c)
        value_bad, _ = dr_loss(select_bad, t, y_r, y_c)
        assert value_good < value_bad

    def test_kappa_stabilises_denominator(self):
        t = np.array([1, 0])
        y_r = np.array([1.0, 1.0])
        y_c = np.array([0.0, 0.0])  # zero incremental cost
        value, grad = dr_loss(np.zeros(2), t, y_r, y_c, kappa=0.1)
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad))


class TestDirectRank:
    def test_fit_predict_shapes(self, easy_rct):
        data = easy_rct
        model = DirectRank(hidden=16, epochs=10, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        pred = model.predict_roi(data.x[:30])
        assert pred.shape == (30,)
        assert np.all((pred > 0) & (pred < 1))

    def test_learns_some_ranking_signal(self, easy_rct):
        data = easy_rct
        model = DirectRank(hidden=32, epochs=50, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        pred = model.predict_roi(data.x)
        # DR is non-convex and imperfect (the paper's point), but it should
        # pick up *some* positive signal on easy data
        assert np.corrcoef(pred, data.roi)[0, 1] > 0.1

    def test_mc_dropout(self, easy_rct):
        data = easy_rct
        model = DirectRank(hidden=16, epochs=5, dropout=0.3, random_state=0)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        mean, std = model.predict_roi_mc(data.x[:20], n_samples=10)
        assert mean.shape == std.shape == (20,)
        assert np.all(std > 0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DirectRank().predict_roi(np.ones((1, 3)))

    def test_invalid_kappa(self):
        with pytest.raises(ValueError, match="kappa"):
            DirectRank(kappa=0.0)

    def test_single_arm_rejected(self):
        x = np.random.default_rng(0).normal(size=(40, 3))
        with pytest.raises(ValueError, match="treated and control"):
            DirectRank(epochs=2).fit(x, np.zeros(40, dtype=int), np.ones(40), np.ones(40))

"""Zero-copy transport pins: pool lifecycle, shared cache, segment hygiene.

The guarantees :mod:`repro.runtime.shm` makes to the serving fleet:

* :class:`SharedTensorPool` segments follow the create/attach/release
  lifecycle — attachers only ever close their own mapping, the creator's
  final release unlinks the kernel object, and ``shutdown``/``close``
  sweep whatever is still open;
* :class:`SharedScoreCache` is shared-visibility (any attacher sees any
  writer's entries) and correctness-neutral under eviction: a ``get``
  returns the exact cached score or ``None``, never a stale value for a
  different key;
* **hygiene**: a fleet shutdown — clean, after a mid-flight exception,
  or with a SIGKILLed worker — leaves ``live_segment_count() == 0`` and
  the leak counter untouched.  Leaked ``/dev/shm`` objects survive the
  process, so this is pinned by regression test rather than left to
  code review;
* a full result ring degrades to inline (pickled) results, never to a
  stall or an overwrite.
"""

from __future__ import annotations

import contextlib
import os
import signal

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.runtime import (
    ProcessBackend,
    SharedScoreCache,
    SharedTensorPool,
    live_segment_count,
)
from repro.serving import ModelRegistry, ScoringEngine, ShardedScoringEngine
from repro.serving.sharding import _SHARD_TRANSPORTS


class LinearROI:
    """Module-level (picklable) deterministic scorer: x @ w."""

    def __init__(self, w):
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x):
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


W = [1.0, -0.5, 0.25, 2.0]


def make_registry(split: float = 0.0) -> ModelRegistry:
    registry = ModelRegistry(traffic_split=split, random_state=7)
    registry.register(LinearROI(W), promote=True)
    if split > 0.0:
        registry.register(LinearROI([0.5, 0.5, -0.25, 1.0]))
    return registry


@pytest.fixture
def rows():
    return np.random.default_rng(0).normal(size=(120, 4))


# ---------------------------------------------------------------------------
# SharedTensorPool lifecycle
# ---------------------------------------------------------------------------
class TestSharedTensorPool:
    def test_create_attach_share_pages(self):
        """An attacher's array view aliases the creator's segment."""
        with SharedTensorPool() as owner, SharedTensorPool() as other:
            tensor = owner.create((4, 3))
            tensor.array[:] = np.arange(12.0).reshape(4, 3)
            name, shape, dtype = tensor.descriptor()
            attached = other.attach(name, shape, dtype)
            np.testing.assert_array_equal(attached.array, tensor.array)
            attached.array[0, 0] = 99.0  # writes travel the other way too
            assert tensor.array[0, 0] == 99.0
            assert tensor.owner and not attached.owner

    def test_refcounted_release(self):
        pool = SharedTensorPool()
        tensor = pool.create((8,))
        assert pool.attach(tensor.name, (8,)) is tensor  # same-pool attach
        assert pool.live_segments == 1
        assert pool.release(tensor.name)  # drops to refcount 1
        assert pool.live_segments == 1
        assert pool.release(tensor.name)  # final: closes + unlinks
        assert pool.live_segments == 0
        assert not pool.release(tensor.name)  # idempotent no-op
        pool.close()

    def test_owner_release_unlinks_kernel_object(self):
        pool = SharedTensorPool()
        name = pool.create((4,)).name
        pool.release(name)
        fresh = SharedTensorPool()
        with pytest.raises(FileNotFoundError):
            fresh.attach(name, (4,))
        fresh.close()
        pool.close()

    def test_context_manager_sweeps_everything(self):
        before = live_segment_count()
        with SharedTensorPool() as pool:
            for _ in range(3):
                pool.create((16, 2))
            assert live_segment_count() == before + 3
        assert live_segment_count() == before
        assert pool.live_segments == 0

    def test_metrics_exported_into_registry(self):
        registry = MetricsRegistry()
        pool = SharedTensorPool(metrics=registry)
        a = pool.create((4,))
        pool.create((4,))
        pool.attach(a.name, (4,))
        snap = registry.snapshot()
        assert snap["shm.segments_created"].value == 2
        assert snap["shm.segments_attached"].value == 1
        assert snap["shm.live_segments"].value == 2
        assert snap["shm.live_bytes"].value == 2 * 4 * 8
        pool.close()
        snap = registry.snapshot()
        assert snap["shm.segments_released"].value == 2
        assert snap["shm.segments_leaked"].value == 0
        assert snap["shm.live_segments"].value == 0

    def test_atexit_sweep_counts_leaks(self):
        """Segments the owner never released are reclaimed and counted."""
        registry = MetricsRegistry()
        pool = SharedTensorPool(metrics=registry)
        pool.create((32,))
        pool._sweep_leaked()  # the atexit path, invoked directly
        assert pool.live_segments == 0
        assert pool.leaked_segments == 1
        assert registry.snapshot()["shm.segments_leaked"].value == 1
        pool.close()


# ---------------------------------------------------------------------------
# SharedScoreCache
# ---------------------------------------------------------------------------
class TestSharedScoreCache:
    def test_put_get_roundtrip_and_miss(self):
        with SharedTensorPool() as pool:
            cache = SharedScoreCache.create(pool, slots=64)
            row = np.arange(4.0).tobytes()
            assert cache.get(1, row) is None
            cache.put(1, row, 0.625)
            assert cache.get(1, row) == 0.625
            cache.put(1, row, 0.625)  # same key: no-op, still one entry
            assert cache.get(1, row) == 0.625

    def test_version_salts_the_tag(self):
        """The same row under two model versions is two distinct keys."""
        with SharedTensorPool() as pool:
            cache = SharedScoreCache.create(pool, slots=64)
            row = b"feature-bytes"
            assert cache.tag_of(1, row) != cache.tag_of(2, row)
            cache.put(1, row, 0.5)
            assert cache.get(2, row) is None
            assert cache.get(1, row) == 0.5

    def test_attacher_sees_creator_entries(self):
        """The cross-shard property: one table, every attacher hits it."""
        with SharedTensorPool() as owner, SharedTensorPool() as other:
            cache = SharedScoreCache.create(owner, slots=32)
            cache.put(3, b"row", 1.25)
            name, slots = cache.descriptor()
            attached = SharedScoreCache.attach(other, name, slots)
            assert attached.get(3, b"row") == 1.25
            attached.put(3, b"other", -2.0)
            assert cache.get(3, b"other") == -2.0

    def test_eviction_never_corrupts(self):
        """Overfilling a tiny table loses entries, never falsifies them."""
        with SharedTensorPool() as pool:
            cache = SharedScoreCache.create(pool, slots=8)
            keys = [f"row-{i}".encode() for i in range(50)]
            for i, key in enumerate(keys):
                cache.put(1, key, float(i))
            hits = misses = 0
            for i, key in enumerate(keys):
                got = cache.get(1, key)
                if got is None:
                    misses += 1
                else:
                    assert got == float(i)  # exact or absent, never stale
                    hits += 1
            assert hits > 0 and misses > 0  # genuinely evicting

    def test_min_slots_validated(self):
        with SharedTensorPool() as pool:
            with pytest.raises(ValueError, match="slots"):
                SharedScoreCache.create(pool, slots=4)


# ---------------------------------------------------------------------------
# fleet-wide cache visibility over the transport
# ---------------------------------------------------------------------------
class TestFleetSharedCache:
    def _two_keys_on_different_shards(self, fleet):
        k0 = next(k for k in range(100) if fleet.shard_of(f"k{k}") == 0)
        k1 = next(k for k in range(100) if fleet.shard_of(f"k{k}") == 1)
        return f"k{k0}", f"k{k1}"

    def test_shm_cache_hit_crosses_shards(self):
        """A row scored on shard 0 is a cache hit on shard 1 (shm only)."""
        row = np.arange(4.0)
        hits = {}
        for transport in ("shm", "inline"):
            fleet = ShardedScoringEngine(
                make_registry(),
                n_shards=2,
                cache_size=64,
                dispatch_size=1,
                transport=transport,
            )
            key_a, key_b = self._two_keys_on_different_shards(fleet)
            fleet.submit(row, key=key_a)
            fleet.flush()
            fleet.submit(row, key=key_b)
            fleet.flush()
            hits[transport] = fleet.stats["cache_hits"]
            fleet.close()
        assert hits["shm"] == 1  # the shared table made it visible
        assert hits["inline"] == 0  # per-shard LRUs cannot


# ---------------------------------------------------------------------------
# segment hygiene: shutdown in every failure mode
# ---------------------------------------------------------------------------
class TestSegmentHygiene:
    def test_clean_close_releases_every_segment(self, rows):
        before = live_segment_count()
        fleet = ShardedScoringEngine(
            make_registry(), n_shards=2, cache_size=64, transport="shm"
        )
        assert live_segment_count() > before  # rings (+ cache) are live
        rids = [fleet.submit(row, key=i) for i, row in enumerate(rows)]
        fleet.flush()
        for rid in rids:
            fleet.take(rid)
        fleet.close()
        assert live_segment_count() == before
        assert fleet._shm_pool.live_segments == 0
        assert fleet._shm_pool.leaked_segments == 0

    def test_mid_flight_exception_releases_every_segment(self, rows):
        before = live_segment_count()
        with pytest.raises(RuntimeError, match="mid-flight"):
            with ShardedScoringEngine(
                make_registry(), n_shards=2, cache_size=32, transport="shm"
            ) as fleet:
                for i, row in enumerate(rows):
                    fleet.submit(row, key=i)  # in-flight, never flushed
                raise RuntimeError("mid-flight failure")
        assert live_segment_count() == before
        assert fleet._shm_pool.leaked_segments == 0

    def test_process_fleet_clean_close(self, rows):
        before = live_segment_count()
        backend = ProcessBackend(n_workers=2)
        try:
            fleet = ShardedScoringEngine(
                make_registry(), n_shards=2, cache_size=128, backend=backend
            )
            assert fleet.transport == "shm"  # auto on a process backend
            for i, row in enumerate(rows):
                fleet.submit(row, key=i)
            fleet.flush()
            assert fleet.stats["requests"] == len(rows)
            fleet.close()
            assert live_segment_count() == before
            assert fleet._shm_pool.leaked_segments == 0
        finally:
            backend.shutdown()

    def test_worker_death_still_releases_parent_segments(self, rows):
        """SIGKILLing a shard's worker must not strand /dev/shm objects:
        the parent created every segment, so the parent can always
        unlink them — even when _shard_drop can no longer run."""
        before = live_segment_count()
        backend = ProcessBackend(n_workers=2)
        try:
            fleet = ShardedScoringEngine(
                make_registry(), n_shards=2, cache_size=64, backend=backend
            )
            for i, row in enumerate(rows[:40]):
                fleet.submit(row, key=i)
            fleet.flush()
            victim = backend.submit_to(0, os.getpid).result()
            os.kill(victim, signal.SIGKILL)
            with contextlib.suppress(Exception):  # broken lane may raise
                fleet.close()
            assert fleet._shm_pool.live_segments == 0
            assert live_segment_count() == before
        finally:
            with contextlib.suppress(Exception):
                backend.shutdown()


# ---------------------------------------------------------------------------
# result-ring degradation
# ---------------------------------------------------------------------------
class TestRingFallback:
    def test_full_ring_falls_back_to_inline_results(self, rows):
        """With zero free ring slots every dispatch returns results
        inline — scores are still exact and nothing is overwritten."""
        fleet = ShardedScoringEngine(
            make_registry(), n_shards=1, batch_size=8, dispatch_size=8,
            cache_size=0, transport="shm",
        )
        reference = ShardedScoringEngine(
            make_registry(), n_shards=1, batch_size=8, dispatch_size=8,
            cache_size=0, transport="shm",
        )
        # white box: pretend the worker already filled the whole ring
        transport = _SHARD_TRANSPORTS[(fleet._fleet_id, 0)]
        transport.ring_written += fleet._ring_slots
        ids = fleet.submit_batch(rows)
        ref_ids = reference.submit_batch(rows)
        fleet.flush()
        reference.flush()
        assert fleet._ring_consumed[0] == 0  # the ring was never used
        assert reference._ring_consumed[0] == len(rows)  # ...but is normally
        for rid, ref in zip(ids, ref_ids):
            assert fleet.take(rid) == reference.take(ref)
        fleet.close()
        reference.close()
        assert fleet._shm_pool.leaked_segments == 0

    def test_plain_engine_unaffected_by_transport_machinery(self, rows):
        """The serial engine path has no segments at all: submitting the
        same stream through a bare ScoringEngine touches no pool."""
        before = live_segment_count()
        engine = ScoringEngine(make_registry(), batch_size=16, cache_size=0)
        ids = engine.submit_batch(rows)
        engine.flush()
        assert len(engine.take_block(ids)) == len(rows)
        assert live_segment_count() == before

"""Tests for repro.nn.optimizers."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam


def quadratic_descent(optimizer, steps=200, start=5.0):
    """Minimise f(p) = p^2 and return the final |p|."""
    p = np.array([start])
    for _ in range(steps):
        grad = 2.0 * p
        optimizer.step([p], [grad])
    return float(np.abs(p[0]))


class TestSGD:
    def test_descends_quadratic(self):
        assert quadratic_descent(SGD(learning_rate=0.1)) < 1e-3

    def test_momentum_descends(self):
        assert quadratic_descent(SGD(learning_rate=0.05, momentum=0.9)) < 1e-2

    def test_weight_decay_shrinks_parameter(self):
        opt = SGD(learning_rate=0.1, weight_decay=0.5)
        p = np.array([1.0])
        opt.step([p], [np.zeros(1)])  # zero gradient: only decay acts
        assert p[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)

    def test_reset_clears_velocity(self):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        p = np.array([1.0])
        opt.step([p], [np.ones(1)])
        opt.reset()
        assert opt._velocity == {}

    def test_updates_in_place(self):
        opt = SGD(learning_rate=0.1)
        p = np.array([1.0])
        ref = p
        opt.step([p], [np.ones(1)])
        assert ref is p
        assert ref[0] != 1.0


class TestAdam:
    def test_descends_quadratic(self):
        assert quadratic_descent(Adam(learning_rate=0.3), steps=300) < 1e-2

    def test_descends_ill_conditioned(self):
        # f(p) = 100 p0^2 + p1^2 — Adam normalises per-coordinate scale
        opt = Adam(learning_rate=0.2)
        p = np.array([3.0, 3.0])
        for _ in range(400):
            grad = np.array([200.0 * p[0], 2.0 * p[1]])
            opt.step([p], [grad])
        assert np.abs(p).max() < 0.05

    def test_bias_correction_first_step(self):
        opt = Adam(learning_rate=0.1)
        p = np.array([1.0])
        opt.step([p], [np.array([1.0])])
        # first Adam step magnitude ~= lr regardless of gradient scale
        assert p[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_weight_decay_negative_rejected(self):
        with pytest.raises(ValueError):
            Adam(weight_decay=-1e-3)

    def test_reset(self):
        opt = Adam()
        p = np.array([1.0])
        opt.step([p], [np.ones(1)])
        opt.reset()
        assert opt._t == 0
        assert opt._m == {} and opt._v == {}

    def test_multiple_parameters(self):
        opt = Adam(learning_rate=0.1)
        a = np.array([2.0])
        b = np.array([[1.0, -1.0]])
        opt.step([a, b], [2 * a, 2 * b])
        assert a[0] < 2.0
        assert b[0, 0] < 1.0 and b[0, 1] > -1.0

"""End-to-end tests for the rDRP pipeline (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.rdrp import RobustDRP
from repro.metrics.aucc import aucc


@pytest.fixture(scope="module")
def fitted_rdrp():
    """One shared fit across this module's read-only tests (expensive)."""
    from repro.data.synthetic import SyntheticRCTConfig, generate_rct

    gen = np.random.default_rng(2024)
    n = 3000
    x = gen.normal(size=(n, 5))
    config = SyntheticRCTConfig(
        roi_low=0.05,
        roi_high=0.95,
        cost_low=0.2,
        cost_high=0.5,
        base_cost_rate=0.4,
        base_revenue_rate=0.3,
        p_treat=0.5,
        noise_scale=0.1,
    )
    data = generate_rct(n, x, config, random_state=gen, name="rdrp-test")
    train = data.subset(np.arange(0, 1800))
    calib = data.subset(np.arange(1800, 2400))
    test = data.subset(np.arange(2400, n))

    model = RobustDRP(random_state=0, hidden=16, epochs=40, mc_samples=10, n_restarts=2)
    model.fit(train.x, train.t, train.y_r, train.y_c)
    model.calibrate(calib.x, calib.t, calib.y_r, calib.y_c)
    return model, train, calib, test


class TestPipeline:
    def test_predict_roi_shape_and_finiteness(self, fitted_rdrp):
        model, _, _, test = fitted_rdrp
        froi = model.predict_roi(test.x)
        assert froi.shape == (test.n,)
        assert np.all(np.isfinite(froi))

    def test_selected_form_is_valid(self, fitted_rdrp):
        model, *_ = fitted_rdrp
        assert model.selected_form in {"5a", "5b", "5c", "identity"}

    def test_q_hat_positive(self, fitted_rdrp):
        model, *_ = fitted_rdrp
        assert model.q_hat > 0

    def test_intervals_contain_point_estimate(self, fitted_rdrp):
        model, _, _, test = fitted_rdrp
        lower, upper = model.predict_interval(test.x)
        roi_hat, _ = model._point_and_std(test.x)
        assert np.all(lower <= upper)
        # the interval is centred on roî: the MC redraw moves the centre
        # slightly, so allow a small tolerance
        assert np.mean((roi_hat >= lower - 0.1) & (roi_hat <= upper + 0.1)) > 0.95

    def test_ranking_beats_random(self, fitted_rdrp):
        model, _, _, test = fitted_rdrp
        froi = model.predict_roi(test.x)
        rng = np.random.default_rng(0)
        score_model = aucc(froi, test.t, test.y_r, test.y_c)
        score_random = np.mean(
            [
                aucc(rng.random(test.n), test.t, test.y_r, test.y_c)
                for _ in range(10)
            ]
        )
        assert score_model > score_random

    def test_interval_covers_binned_roi_star_on_test(self, fitted_rdrp):
        """Eq. 4 transfer check: coverage of the test-set surrogate labels."""
        model, _, _, test = fitted_rdrp
        roi_hat, _ = model._point_and_std(test.x)
        roi_star = model.roi_star_estimator.estimate(roi_hat, test.t, test.y_r, test.y_c)
        lower, upper = model.predict_interval(test.x)
        coverage = float(np.mean((roi_star >= lower) & (roi_star <= upper)))
        # alpha = 0.1; allow slack for the finite test set and MC redraw
        assert coverage >= 0.75


class TestGuards:
    def test_predict_before_calibrate(self, easy_rct):
        data = easy_rct
        model = RobustDRP(random_state=0, hidden=16, epochs=3, n_restarts=1)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        with pytest.raises(RuntimeError, match="calibrate"):
            model.predict_roi(data.x)
        with pytest.raises(RuntimeError, match="calibrate"):
            model.predict_interval(data.x)
        with pytest.raises(RuntimeError, match="calibrate"):
            _ = model.selected_form

    def test_calibrate_requires_both_arms(self, easy_rct):
        data = easy_rct
        model = RobustDRP(random_state=0, hidden=16, epochs=3, n_restarts=1)
        model.fit(data.x, data.t, data.y_r, data.y_c)
        with pytest.raises(ValueError, match="treated and control"):
            model.calibrate(
                data.x[:50], np.ones(50, dtype=int), data.y_r[:50], data.y_c[:50]
            )

    def test_invalid_mc_samples(self):
        with pytest.raises(ValueError, match="mc_samples"):
            RobustDRP(mc_samples=1)

    def test_prebuilt_drp_accepted(self, easy_rct):
        from repro.core.drp import DRPModel

        data = easy_rct
        drp = DRPModel(hidden=16, epochs=3, n_restarts=1, random_state=0)
        model = RobustDRP(drp=drp)
        assert model.drp is drp

"""Tests for Algorithm 2 (binary search for roi*)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.roi_star import RoiStarEstimator, binary_search_roi_star


def rct_with_roi(roi_value, n=20000, seed=0, tau_c=0.5):
    """Construct outcomes whose pooled difference-in-means ROI is exact."""
    rng = np.random.default_rng(seed)
    t = np.array([1, 0] * (n // 2))
    y_c = 0.2 + tau_c * t + 0.01 * rng.normal(size=n)
    y_r = 0.1 + roi_value * tau_c * t + 0.01 * rng.normal(size=n)
    return t, y_r, y_c


class TestBinarySearch:
    @pytest.mark.parametrize("target", [0.2, 0.5, 0.8])
    def test_finds_known_roi(self, target):
        t, y_r, y_c = rct_with_roi(target)
        found = binary_search_roi_star(t, y_r, y_c, eps=1e-4)
        assert found == pytest.approx(target, abs=0.02)

    def test_clipping_when_roi_outside_unit(self):
        # tau_r > tau_c  ->  unclipped root would exceed 1
        rng = np.random.default_rng(1)
        n = 2000
        t = np.array([1, 0] * (n // 2))
        y_c = 0.1 + 0.2 * t + 0.01 * rng.normal(size=n)
        y_r = 0.1 + 0.5 * t + 0.01 * rng.normal(size=n)
        found = binary_search_roi_star(t, y_r, y_c, clip=1e-3)
        assert found <= 1.0 - 1e-3 + 1e-12

    def test_eps_validation(self):
        t, y_r, y_c = rct_with_roi(0.5, n=100)
        with pytest.raises(ValueError, match="eps"):
            binary_search_roi_star(t, y_r, y_c, eps=0.0)

    @given(st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=15, deadline=None)
    def test_recovers_any_roi_in_range(self, target):
        t, y_r, y_c = rct_with_roi(target, n=4000, seed=7)
        found = binary_search_roi_star(t, y_r, y_c, eps=1e-4)
        assert found == pytest.approx(target, abs=0.05)

    def test_terminates_quickly(self):
        """Bisection on (0,1) with eps=1e-3 needs ~10 iterations."""
        t, y_r, y_c = rct_with_roi(0.37, n=1000)
        found = binary_search_roi_star(t, y_r, y_c, eps=1e-3)
        assert found == pytest.approx(0.37, abs=0.05)


class TestRoiStarEstimator:
    def test_global_mode_constant(self):
        t, y_r, y_c = rct_with_roi(0.4, n=2000)
        roi_hat = np.random.default_rng(0).random(2000)
        estimator = RoiStarEstimator(mode="global")
        stars = estimator.estimate(roi_hat, t, y_r, y_c)
        assert np.unique(stars).shape[0] == 1
        assert stars[0] == pytest.approx(0.4, abs=0.05)

    def test_binned_mode_tracks_heterogeneity(self):
        """Bins sorted by a perfect roi_hat should recover the local ROI."""
        rng = np.random.default_rng(3)
        n = 20000
        t = np.array([1, 0] * (n // 2))
        true_roi = np.linspace(0.2, 0.8, n)
        tau_c = 0.5
        y_c = 0.2 + tau_c * t + 0.01 * rng.normal(size=n)
        y_r = 0.1 + true_roi * tau_c * t + 0.01 * rng.normal(size=n)
        estimator = RoiStarEstimator(mode="binned", n_bins=10)
        stars = estimator.estimate(true_roi, t, y_r, y_c)
        # low-roi_hat samples should get low roi*, high get high
        low = stars[true_roi < 0.3].mean()
        high = stars[true_roi > 0.7].mean()
        assert high - low > 0.2

    def test_binned_falls_back_when_too_small(self):
        t, y_r, y_c = rct_with_roi(0.5, n=60)
        roi_hat = np.random.default_rng(0).random(60)
        estimator = RoiStarEstimator(mode="binned", n_bins=20, min_arm_per_bin=10)
        stars = estimator.estimate(roi_hat, t, y_r, y_c)
        assert np.unique(stars).shape[0] == 1  # global fallback everywhere

    def test_invalid_mode(self):
        with pytest.raises(ValueError, match="mode"):
            RoiStarEstimator(mode="magic")

    def test_invalid_bins(self):
        with pytest.raises(ValueError, match="n_bins"):
            RoiStarEstimator(n_bins=0)

    def test_output_in_unit_interval(self):
        t, y_r, y_c = rct_with_roi(0.5, n=1000)
        roi_hat = np.random.default_rng(0).random(1000)
        stars = RoiStarEstimator().estimate(roi_hat, t, y_r, y_c)
        assert np.all((stars > 0) & (stars < 1))

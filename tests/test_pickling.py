"""Every public model must pickle round-trip with bit-identical predictions.

This is the load-bearing contract of sharded serving: a
:class:`~repro.serving.sharding.ShardedScoringEngine` ships fitted
models to worker processes inside a pickled
:class:`~repro.serving.engine.EngineCore`, and a replica that predicts
even one ULP differently from its parent silently breaks the
single-engine-equivalence guarantee (same request stream, same scores,
any backend).  So: fit each public model class on small synthetic RCT
data, ``pickle.dumps``/``loads`` it, and pin ``predict == predict``
exactly — ``np.array_equal``, not ``allclose``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.causal.forest_uplift import CausalForestUplift
from repro.causal.meta import SLearner, TLearner, XLearner
from repro.causal.neural import DragonNet, OffsetNet, SNet, TARNet
from repro.core.direct_rank import DirectRank
from repro.core.drp import DRPModel
from repro.core.rdrp import RobustDRP
from repro.linear import LogisticRegression, RidgeRegression
from repro.trees import (
    CausalForest,
    CausalTree,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)


def _rct(n: int = 220, d: int = 5, seed: int = 11):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    t = (rng.random(n) < 0.5).astype(int)
    tau_r = 0.8 * x[:, 0] + 0.3
    y_r = 0.5 * x[:, 1] + t * tau_r + 0.1 * rng.normal(size=n)
    y_c = np.abs(0.4 * x[:, 2] + t * 0.5 + 0.1 * rng.normal(size=n)) + 0.05
    y = y_r - y_c
    return x, t, y, y_r, y_c


X, T, Y, Y_R, Y_C = _rct()
X_EVAL = np.random.default_rng(99).normal(size=(64, X.shape[1]))

# (id, fit(returns fitted model), predict(model, x) -> ndarray)
CASES = [
    (
        "ridge",
        lambda: RidgeRegression(alpha=0.5).fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    (
        "logistic",
        lambda: LogisticRegression(max_iter=50).fit(X, (Y > 0).astype(int)),
        lambda m, x: m.predict_proba(x),
    ),
    (
        "tree",
        lambda: DecisionTreeRegressor(max_depth=4).fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    (
        "forest",
        lambda: RandomForestRegressor(n_estimators=8, max_depth=4, random_state=0).fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    (
        "boosting",
        lambda: GradientBoostingRegressor(n_estimators=8, max_depth=2).fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    (
        "causal_tree",
        lambda: CausalTree(max_depth=4).fit(X, Y, T),
        lambda m, x: m.predict(x),
    ),
    (
        "causal_forest",
        lambda: CausalForest(n_estimators=6, max_depth=3, random_state=0).fit(X, Y, T),
        lambda m, x: m.predict(x),
    ),
    (
        "causal_forest_uplift",
        lambda: CausalForestUplift(n_estimators=6, max_depth=3, random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "s_learner",
        lambda: SLearner(random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "t_learner",
        lambda: TLearner(random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "x_learner",
        lambda: XLearner(random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "tarnet",
        lambda: TARNet(hidden=8, epochs=3, random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "dragonnet",
        lambda: DragonNet(hidden=8, epochs=3, random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "offsetnet",
        lambda: OffsetNet(hidden=8, epochs=3, random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "snet",
        lambda: SNet(hidden=8, epochs=3, random_state=0).fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    (
        "drp",
        lambda: DRPModel(
            hidden=10, epochs=3, n_restarts=1, patience=None, random_state=0
        ).fit(X, T, Y_R, Y_C),
        lambda m, x: m.predict_roi(x),
    ),
    (
        "robust_drp",
        lambda: RobustDRP(
            mc_samples=4, hidden=10, epochs=3, n_restarts=1, patience=None, random_state=0
        ).fit(X, T, Y_R, Y_C).calibrate(X, T, Y_R, Y_C),
        lambda m, x: m.predict_roi(x),
    ),
    (
        "direct_rank",
        lambda: DirectRank(hidden=10, epochs=3, random_state=0).fit(X, T, Y_R, Y_C),
        lambda m, x: m.predict_roi(x),
    ),
]


@pytest.mark.parametrize("name,fit,predict", CASES, ids=[c[0] for c in CASES])
def test_pickle_roundtrip_bit_identical(name, fit, predict):
    # pickle *first*, predict on both after — the shipping scenario.
    # (Predicting before the pickle would advance stateful prediction
    # RNGs — RobustDRP's MC dropout — and desync parent and replica.)
    model = fit()
    clone = pickle.loads(pickle.dumps(model))
    parent = np.asarray(predict(model, X_EVAL), dtype=float)
    replica = np.asarray(predict(clone, X_EVAL), dtype=float)
    assert parent.shape == replica.shape
    assert np.array_equal(parent, replica), f"{name} drifted through pickle"
    # the clone must be a genuine copy, not a reference back
    assert clone is not model


@pytest.mark.parametrize("name,fit,predict", CASES[:4], ids=[c[0] for c in CASES[:4]])
def test_double_roundtrip_stable(name, fit, predict):
    """pickle(pickle(m)) predicts like pickle(m): no per-hop drift."""
    model = fit()
    once = pickle.loads(pickle.dumps(model))
    twice = pickle.loads(pickle.dumps(once))
    assert np.array_equal(
        np.asarray(predict(once, X_EVAL)), np.asarray(predict(twice, X_EVAL))
    )


class LinearROI:
    """Module-level (hence picklable) deterministic scorer stub."""

    def __init__(self, w):
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x):
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def test_engine_core_roundtrip_bit_identical():
    """The actual shipping unit: EngineCore → pickle → build → same scores."""
    from repro.serving import ModelRegistry, ScoringEngine
    from repro.serving.policy import GreedyROIPolicy

    registry = ModelRegistry(traffic_split=0.2, random_state=3)
    registry.register(LinearROI([1.0, -0.5, 0.25, 2.0, 0.1]), promote=True)
    registry.register(LinearROI([0.5, 0.5, 0.5, 0.5, 0.5]))
    engine = ScoringEngine(registry, policy=GreedyROIPolicy(), batch_size=16)
    rebuilt = pickle.loads(pickle.dumps(engine.core())).build()
    for i, row in enumerate(X_EVAL[:32, :5]):
        assert engine.score(row, key=i) == rebuilt.score(row, key=i)
    assert rebuilt.registry is not engine.registry

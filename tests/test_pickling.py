"""Every public model must pickle round-trip with bit-identical predictions.

This is the load-bearing contract of sharded serving: a
:class:`~repro.serving.sharding.ShardedScoringEngine` ships fitted
models to worker processes inside a pickled
:class:`~repro.serving.engine.EngineCore`, and a replica that predicts
even one ULP differently from its parent silently breaks the
single-engine-equivalence guarantee (same request stream, same scores,
any backend).  So: fit each public model class on small synthetic RCT
data, ``pickle.dumps``/``loads`` it, and pin ``predict == predict``
exactly — ``np.array_equal``, not ``allclose``.

The model list itself (build/train/predict recipes) lives in
``tests/_model_zoo.py``, shared with the
:class:`~repro.causal.base.TrainableModel` protocol pins in
``test_public_api.py``.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from _model_zoo import CASES, X_EVAL


@pytest.mark.parametrize("case", CASES, ids=[c.name for c in CASES])
def test_pickle_roundtrip_bit_identical(case):
    # pickle *first*, predict on both after — the shipping scenario.
    # (Predicting before the pickle would advance stateful prediction
    # RNGs — RobustDRP's MC dropout — and desync parent and replica.)
    model = case.train(case.build())
    clone = pickle.loads(pickle.dumps(model))
    parent = np.asarray(case.predict(model, X_EVAL), dtype=float)
    replica = np.asarray(case.predict(clone, X_EVAL), dtype=float)
    assert parent.shape == replica.shape
    assert np.array_equal(parent, replica), f"{case.name} drifted through pickle"
    # the clone must be a genuine copy, not a reference back
    assert clone is not model


@pytest.mark.parametrize("case", CASES[:4], ids=[c.name for c in CASES[:4]])
def test_double_roundtrip_stable(case):
    """pickle(pickle(m)) predicts like pickle(m): no per-hop drift."""
    model = case.train(case.build())
    once = pickle.loads(pickle.dumps(model))
    twice = pickle.loads(pickle.dumps(once))
    assert np.array_equal(
        np.asarray(case.predict(once, X_EVAL)),
        np.asarray(case.predict(twice, X_EVAL)),
    )


class LinearROI:
    """Module-level (hence picklable) deterministic scorer stub."""

    def __init__(self, w):
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x):
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


def test_engine_core_roundtrip_bit_identical():
    """The actual shipping unit: EngineCore → pickle → build → same scores."""
    from repro.serving import ModelRegistry, ScoringEngine
    from repro.serving.policy import GreedyROIPolicy

    registry = ModelRegistry(traffic_split=0.2, random_state=3)
    registry.register(LinearROI([1.0, -0.5, 0.25, 2.0, 0.1]), promote=True)
    registry.register(LinearROI([0.5, 0.5, 0.5, 0.5, 0.5]))
    engine = ScoringEngine(registry, policy=GreedyROIPolicy(), batch_size=16)
    rebuilt = pickle.loads(pickle.dumps(engine.core())).build()
    for i, row in enumerate(X_EVAL[:32, :5]):
        assert engine.score(row, key=i) == rebuilt.score(row, key=i)
    assert rebuilt.registry is not engine.registry

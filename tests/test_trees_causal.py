"""Tests for repro.trees.causal_tree and causal_forest."""

import numpy as np
import pytest

from repro.trees.causal_forest import CausalForest
from repro.trees.causal_tree import CausalTree, best_effect_split


def heterogeneous_rct(n=2000, seed=0):
    """tau = 2 where x0 > 0 else 0.5; outcome = tau*t + noise."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 3))
    t = rng.integers(0, 2, size=n)
    tau = np.where(x[:, 0] > 0, 2.0, 0.5)
    y = tau * t + 0.3 * rng.normal(size=n)
    return x, y, t, tau


class TestBestEffectSplit:
    def test_finds_effect_boundary(self):
        x, y, t, _ = heterogeneous_rct()
        thr, score = best_effect_split(x[:, 0], y, t, 10, 10)
        assert score > -np.inf
        assert abs(thr) < 0.15  # the true boundary is at 0

    def test_respects_arm_minimums(self):
        x = np.arange(20.0)
        t = np.array([1] * 10 + [0] * 10)
        y = np.random.default_rng(0).normal(size=20)
        _, score = best_effect_split(x, y, t, min_treated_leaf=8, min_control_leaf=8)
        # no split can keep 8 treated AND 8 control on both sides of 20 points
        assert score == -np.inf

    def test_constant_feature_no_split(self):
        _, score = best_effect_split(
            np.ones(40),
            np.random.default_rng(0).normal(size=40),
            np.array([0, 1] * 20),
            1,
            1,
        )
        assert score == -np.inf


class TestCausalTree:
    def test_recovers_piecewise_effect(self):
        x, y, t, tau = heterogeneous_rct()
        tree = CausalTree(max_depth=3, random_state=0).fit(x, y, t)
        pred = tree.predict(x)
        # group means should straddle the two true effect levels
        high = pred[x[:, 0] > 0.2].mean()
        low = pred[x[:, 0] < -0.2].mean()
        assert high == pytest.approx(2.0, abs=0.4)
        assert low == pytest.approx(0.5, abs=0.4)

    def test_honest_and_adaptive_both_work(self):
        x, y, t, _ = heterogeneous_rct(n=1200)
        for honest in (True, False):
            tree = CausalTree(max_depth=2, honest=honest, random_state=0).fit(x, y, t)
            assert np.isfinite(tree.predict(x)).all()

    def test_depth_zero_gives_ate(self):
        x, y, t, _ = heterogeneous_rct(n=800)
        tree = CausalTree(max_depth=0, honest=False, random_state=0).fit(x, y, t)
        ate = y[t == 1].mean() - y[t == 0].mean()
        np.testing.assert_allclose(tree.predict(x), np.full(800, ate), atol=1e-9)

    def test_requires_both_arms(self):
        x = np.random.default_rng(0).normal(size=(50, 2))
        y = np.random.default_rng(1).normal(size=50)
        with pytest.raises(ValueError):
            CausalTree().fit(x, y, np.ones(50, dtype=int))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            CausalTree().predict(np.ones((1, 2)))

    def test_feature_mismatch(self):
        x, y, t, _ = heterogeneous_rct(n=400)
        tree = CausalTree(max_depth=1, random_state=0).fit(x, y, t)
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.ones((1, 5)))

    def test_invalid_leaf_minimums(self):
        with pytest.raises(ValueError):
            CausalTree(min_treated_leaf=0)


class TestCausalForest:
    def test_better_than_single_tree_out_of_sample(self):
        # high outcome noise: the ensemble's variance reduction dominates
        def noisy(seed):
            rng = np.random.default_rng(seed)
            n = 2000
            x = rng.uniform(-1, 1, size=(n, 3))
            t = rng.integers(0, 2, size=n)
            tau = np.where(x[:, 0] > 0, 2.0, 0.5)
            y = tau * t + 1.5 * rng.normal(size=n)
            return x, y, t, tau

        x, y, t, tau = noisy(0)
        x_te, _, _, tau_te = noisy(1)
        tree = CausalTree(max_depth=4, random_state=0).fit(x, y, t)
        forest = CausalForest(n_estimators=30, max_depth=4, random_state=0).fit(x, y, t)
        mse_tree = float(np.mean((tree.predict(x_te) - tau_te) ** 2))
        mse_forest = float(np.mean((forest.predict(x_te) - tau_te) ** 2))
        assert mse_forest <= mse_tree * 1.1  # at least comparable, usually better

    def test_variance_estimate(self):
        x, y, t, _ = heterogeneous_rct(n=1000)
        forest = CausalForest(n_estimators=10, random_state=0).fit(x, y, t)
        var = forest.predict_var(x[:50])
        assert var.shape == (50,)
        assert np.all(var >= 0)

    def test_reproducible(self):
        x, y, t, _ = heterogeneous_rct(n=600)
        a = CausalForest(n_estimators=5, random_state=3).fit(x, y, t).predict(x)
        b = CausalForest(n_estimators=5, random_state=3).fit(x, y, t).predict(x)
        np.testing.assert_allclose(a, b)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            CausalForest().predict(np.ones((1, 2)))

    def test_invalid_subsample(self):
        with pytest.raises(ValueError):
            CausalForest(subsample=0.0)

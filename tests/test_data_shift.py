"""Tests for the covariate-shift machinery."""

import numpy as np
import pytest

from repro.data import criteo_uplift_v2
from repro.data.shift import exponential_tilt_shift, shift_direction


@pytest.fixture(scope="module")
def base():
    return criteo_uplift_v2(6000, random_state=0)


class TestShiftDirection:
    def test_unit_norm(self, base):
        d = shift_direction(base)
        assert np.linalg.norm(d) == pytest.approx(1.0)

    def test_first_features_support(self, base):
        d = shift_direction(base, kind="first_features")
        k = max(2, base.n_features // 4)
        assert np.all(d[:k] > 0)
        assert np.all(d[k:] == 0)

    def test_random_is_deterministic(self, base):
        a = shift_direction(base, kind="random")
        b = shift_direction(base, kind="random")
        np.testing.assert_array_equal(a, b)

    def test_unknown_kind(self, base):
        with pytest.raises(ValueError, match="Unknown shift direction"):
            shift_direction(base, kind="sideways")


class TestExponentialTilt:
    def test_mean_moves_along_direction(self, base):
        direction = shift_direction(base)
        shifted = exponential_tilt_shift(base, strength=1.5, random_state=0)
        before = float((base.x @ direction).mean())
        after = float((shifted.x @ direction).mean())
        assert after > before

    def test_conditional_law_preserved(self, base):
        """Each kept row carries its original (x, y) pair: Y|X untouched."""
        shifted = exponential_tilt_shift(base, strength=1.0, random_state=0)
        # every shifted row must exist verbatim in the source
        source_rows = {tuple(np.round(row, 9)) for row in base.x}
        for row in shifted.x[:200]:
            assert tuple(np.round(row, 9)) in source_rows

    def test_without_replacement_rows_unique(self, base):
        shifted = exponential_tilt_shift(base, strength=1.0, random_state=0)
        rounded = np.round(shifted.x, 9)
        unique = np.unique(rounded, axis=0)
        assert unique.shape[0] == shifted.n

    def test_default_output_half_size(self, base):
        shifted = exponential_tilt_shift(base, strength=1.0, random_state=0)
        assert shifted.n == base.n // 2

    def test_zero_strength_is_uniform_subsample(self, base):
        shifted = exponential_tilt_shift(base, strength=0.0, random_state=0)
        direction = shift_direction(base)
        before = float((base.x @ direction).mean())
        after = float((shifted.x @ direction).mean())
        assert after == pytest.approx(before, abs=0.15)

    def test_ground_truth_rides_along(self, base):
        shifted = exponential_tilt_shift(base, strength=1.0, random_state=0)
        np.testing.assert_allclose(shifted.roi, shifted.tau_r / shifted.tau_c)

    def test_n_out_too_large_rejected(self, base):
        with pytest.raises(ValueError, match="cannot exceed"):
            exponential_tilt_shift(base, n_out=base.n + 1)

    def test_negative_strength_rejected(self, base):
        with pytest.raises(ValueError, match="strength"):
            exponential_tilt_shift(base, strength=-1.0)

    def test_wrong_direction_length(self, base):
        with pytest.raises(ValueError, match="direction"):
            exponential_tilt_shift(base, direction=np.ones(3))

    def test_name_tagged(self, base):
        shifted = exponential_tilt_shift(base, strength=1.0, random_state=0)
        assert shifted.name.endswith("-shifted")

    def test_stronger_tilt_moves_further(self, base):
        direction = shift_direction(base)
        weak = exponential_tilt_shift(base, strength=0.5, random_state=0)
        strong = exponential_tilt_shift(base, strength=2.5, random_state=0)
        proj_weak = float((weak.x @ direction).mean())
        proj_strong = float((strong.x @ direction).mean())
        assert proj_strong > proj_weak


class TestConceptDrift:
    def test_deterministic_pure_function(self, base):
        from repro.data.shift import concept_drift

        a = concept_drift(base, strength=1.5)
        b = concept_drift(base, strength=1.5)
        assert np.array_equal(a.tau_r, b.tau_r)
        assert np.array_equal(a.y_r, b.y_r)
        assert a.name == f"{base.name}-drifted"

    def test_conditional_law_changes_marginal_does_not(self, base):
        from repro.data.shift import concept_drift

        drifted = concept_drift(base, strength=2.0)
        assert np.array_equal(drifted.x, base.x)  # covariates untouched
        assert np.array_equal(drifted.t, base.t)
        assert np.array_equal(drifted.y_c, base.y_c)  # costs untouched
        assert np.array_equal(drifted.tau_c, base.tau_c)
        assert not np.array_equal(drifted.tau_r, base.tau_r)

    def test_roi_stays_in_assumption_3_band(self, base):
        from repro.data.shift import concept_drift

        for strength in (0.5, 2.0, 5.0):
            drifted = concept_drift(base, strength=strength)
            assert np.all(drifted.roi > 0.0)
            assert np.all(drifted.roi < 1.0)
            assert np.allclose(drifted.roi, drifted.tau_r / drifted.tau_c)

    def test_realised_revenue_moves_only_on_treated_rows(self, base):
        from repro.data.shift import concept_drift

        drifted = concept_drift(base, strength=2.0)
        control = base.t == 0
        assert np.array_equal(drifted.y_r[control], base.y_r[control])
        delta = drifted.y_r - base.y_r
        assert np.allclose(delta, base.t * (drifted.tau_r - base.tau_r))

    def test_ranking_inverts_along_drift_axis(self, base):
        from repro.data.shift import concept_drift, shift_direction

        drifted = concept_drift(base, strength=3.0)
        z = base.x @ shift_direction(base)
        hi, lo = z > np.quantile(z, 0.8), z < np.quantile(z, 0.2)
        # high-z users lose revenue response, low-z users gain (up to clip)
        assert drifted.tau_r[hi].mean() < base.tau_r[hi].mean()
        assert drifted.tau_r[lo].mean() >= base.tau_r[lo].mean()

    def test_strength_zero_is_clip_only(self, base):
        from repro.data.shift import concept_drift

        drifted = concept_drift(base, strength=0.0)
        assert np.allclose(drifted.tau_r, np.clip(
            base.tau_r, 1e-6, base.tau_c * (1.0 - 1e-6)
        ))

    def test_validation(self, base):
        from repro.data.shift import concept_drift

        with pytest.raises(ValueError, match="strength"):
            concept_drift(base, strength=-0.1)
        with pytest.raises(ValueError, match="direction"):
            concept_drift(base, direction=np.ones(3))

    def test_platform_applies_drift_from_drift_day(self):
        from repro.ab.platform import Platform

        platform = Platform(
            dataset="criteo", random_state=0, drift_day=3, drift_strength=2.0
        )
        before = platform.daily_cohort(500, day=2)
        after = platform.daily_cohort(500, day=3)
        assert not before.name.endswith("-drifted")
        assert after.name.endswith("-drifted")
        # a fresh platform with the same seed replays the same stream,
        # drifted cohort included (the transform itself is deterministic)
        twin = Platform(
            dataset="criteo", random_state=0, drift_day=3, drift_strength=2.0
        )
        twin.daily_cohort(500, day=2)
        again = twin.daily_cohort(500, day=3)
        assert np.array_equal(after.tau_r, again.tau_r)

"""Finite-difference verification of every backward pass.

These are the substrate's most important tests: all causal models rely
on these gradients being exact.
"""

import numpy as np
import pytest

from repro.nn.gradcheck import check_network_gradients, numeric_gradient
from repro.nn.layers import Activation, Dense
from repro.nn.losses import BinaryCrossEntropy, MeanSquaredError
from repro.nn.network import Network, mlp


def mse_loss(target):
    loss = MeanSquaredError()

    def f(pred):
        return loss(pred, target)

    return f


class TestNumericGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0])
        grad = numeric_gradient(lambda v: float(np.sum(v**2)), x)
        np.testing.assert_allclose(grad, 2 * x, atol=1e-5)

    def test_matrix_argument(self):
        x = np.ones((2, 2))
        grad = numeric_gradient(lambda v: float(np.sum(v * v)), x)
        np.testing.assert_allclose(grad, 2 * x, atol=1e-5)


class TestNetworkGradients:
    def test_single_dense_mse(self):
        rng = np.random.default_rng(0)
        net = Network([Dense(3, 2, rng=0)])
        x = rng.normal(size=(5, 3))
        target = rng.normal(size=(5, 2))
        dev = check_network_gradients(net, x, mse_loss(target))
        assert dev < 1e-4

    def test_two_layer_tanh(self):
        rng = np.random.default_rng(1)
        net = Network([Dense(4, 8, rng=1), Activation("tanh"), Dense(8, 1, rng=2)])
        x = rng.normal(size=(6, 4))
        target = rng.normal(size=(6, 1))
        dev = check_network_gradients(net, x, mse_loss(target))
        assert dev < 1e-4

    def test_elu_network(self):
        rng = np.random.default_rng(2)
        net = Network([Dense(3, 6, rng=3), Activation("elu"), Dense(6, 2, rng=4)])
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))
        check_network_gradients(net, x, mse_loss(target))

    def test_sigmoid_head_bce(self):
        rng = np.random.default_rng(3)
        net = Network([Dense(3, 5, rng=5), Activation("tanh"), Dense(5, 1, rng=6)])
        x = rng.normal(size=(8, 3))
        target = rng.integers(0, 2, size=(8, 1)).astype(float)
        bce = BinaryCrossEntropy()

        def loss(pred):
            return bce(pred, target)

        dev = check_network_gradients(net, x, loss)
        assert dev < 1e-4

    def test_mlp_factory_gradients(self):
        rng = np.random.default_rng(4)
        net = mlp(4, [8], output_dim=1, activation="tanh", dropout=0.0, rng=7)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 1))
        check_network_gradients(net, x, mse_loss(target))

    def test_detects_corrupted_gradient(self):
        rng = np.random.default_rng(5)
        net = Network([Dense(2, 2, rng=8)])
        x = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))

        def broken_loss(pred):
            value, grad = MeanSquaredError()(pred, target)
            return value, grad * 1.5  # wrong scale

        with pytest.raises(AssertionError, match="Gradient mismatch"):
            check_network_gradients(net, x, broken_loss)


class TestCausalLossGradients:
    """The paper-specific losses checked against finite differences."""

    def test_drp_loss_gradient(self):
        from repro.core.drp import drp_loss, drp_loss_gradient

        rng = np.random.default_rng(6)
        n = 40
        s = rng.normal(size=n)
        t = rng.integers(0, 2, size=n)
        t[:5] = 1
        t[5:10] = 0  # guarantee both arms
        y_r = rng.random(n)
        y_c = rng.random(n) + 0.5

        analytic = drp_loss_gradient(s, t, y_r, y_c)
        numeric = numeric_gradient(lambda v: drp_loss(v, t, y_r, y_c), s.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_dr_loss_gradient(self):
        from repro.core.direct_rank import dr_loss

        rng = np.random.default_rng(7)
        n = 30
        s = rng.normal(size=n)
        t = rng.integers(0, 2, size=n)
        t[:5] = 1
        t[5:10] = 0
        y_r = rng.random(n)
        y_c = rng.random(n) + 0.5

        _, analytic = dr_loss(s, t, y_r, y_c)

        def value_only(v):
            val, _ = dr_loss(v, t, y_r, y_c)
            return val

        numeric = numeric_gradient(value_only, s.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

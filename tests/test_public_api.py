"""Public-API contract tests: exports resolve, are documented, and cohere."""

import importlib
import inspect

import pytest

import repro
from _model_zoo import CASES as ZOO_CASES
from _model_zoo import X_EVAL as ZOO_X_EVAL

SUBPACKAGES = (
    "repro.ab",
    "repro.causal",
    "repro.causal.meta",
    "repro.causal.neural",
    "repro.core",
    "repro.data",
    "repro.linear",
    "repro.metrics",
    "repro.nn",
    "repro.obs",
    "repro.runtime",
    "repro.serving",
    "repro.trees",
    "repro.utils",
)


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.10.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_headline_api_present(self):
        for name in (
            "RobustDRP",
            "DRPModel",
            "DirectRank",
            "TwoPhaseMethod",
            "make_setting",
            "aucc",
            "greedy_allocation",
            "ABTest",
            "Platform",
            "PolicyReplay",
            "ModelRegistry",
            "ScoringEngine",
            "BudgetPacer",
            "TrafficReplay",
        ):
            assert hasattr(repro, name)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


class TestDocstrings:
    @pytest.mark.parametrize(
        "obj",
        [
            repro.RobustDRP,
            repro.DRPModel,
            repro.DirectRank,
            repro.TwoPhaseMethod,
            repro.TARNet,
            repro.DragonNet,
            repro.OffsetNet,
            repro.SNet,
            repro.SLearner,
            repro.TLearner,
            repro.XLearner,
            repro.CausalForestUplift,
            repro.ConformalCalibrator,
            repro.HeuristicCalibration,
            repro.RoiStarEstimator,
            repro.IsotonicRoiRecalibration,
            repro.RCTDataset,
            repro.Platform,
            repro.ABTest,
        ],
    )
    def test_public_classes_documented(self, obj):
        assert inspect.getdoc(obj), f"{obj.__name__} lacks a docstring"

    @pytest.mark.parametrize(
        "func",
        [
            repro.aucc,
            repro.cost_curve,
            repro.qini_coefficient,
            repro.greedy_allocation,
            repro.greedy_allocation_by_roi,
            repro.binary_search_roi_star,
            repro.make_setting,
            repro.criteo_uplift_v2,
            repro.meituan_lift,
            repro.alibaba_lift,
            repro.exponential_tilt_shift,
            repro.make_tpm,
        ],
    )
    def test_public_functions_documented(self, func):
        assert inspect.getdoc(func), f"{func.__name__} lacks a docstring"


class TestTrainableModelProtocol:
    """Every zoo model speaks the unified trainable-model API.

    The streaming retraining loop depends on exactly this surface:
    ``clone_unfit()`` must produce a fresh same-hyperparameter
    instance whose refit learns only from the new window, and the
    refit must survive the pickle hop to serving workers.
    """

    @pytest.mark.parametrize("case", ZOO_CASES, ids=[c.name for c in ZOO_CASES])
    def test_clone_unfit_refit_pickle_roundtrip(self, case):
        import pickle

        import numpy as np

        from repro.causal.base import TrainableModel

        model = case.train(case.build())
        assert isinstance(model, TrainableModel)
        assert callable(model.fit)

        clone = model.clone_unfit()
        assert type(clone) is type(model)
        assert clone is not model
        refit = case.train(clone)
        assert refit is clone  # fit returns self

        # the refit ships to serving workers: pickle must round-trip
        # it with bit-identical predictions (pickle first — see
        # test_pickling.py on stateful prediction RNGs)
        replica = pickle.loads(pickle.dumps(refit))
        ours = np.asarray(case.predict(refit, ZOO_X_EVAL), dtype=float)
        theirs = np.asarray(case.predict(replica, ZOO_X_EVAL), dtype=float)
        assert np.array_equal(ours, theirs), f"{case.name} refit drifted"

    @pytest.mark.parametrize("case", ZOO_CASES, ids=[c.name for c in ZOO_CASES])
    def test_uplift_scores_entry_point(self, case):
        import numpy as np

        model = case.train(case.build())
        scores = model.uplift_scores(ZOO_X_EVAL)
        assert np.asarray(scores).shape[0] == ZOO_X_EVAL.shape[0]

    def test_clone_unfit_is_actually_unfit(self):
        import numpy as np

        from repro.linear import RidgeRegression

        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(50, 3)), rng.normal(size=50)
        fitted = RidgeRegression(alpha=2.0, fit_intercept=False).fit(x, y)
        clone = fitted.clone_unfit()
        assert clone.alpha == 2.0 and clone.fit_intercept is False
        assert clone.coef_ is None  # no learned state carries over
        with pytest.raises(RuntimeError):
            clone.predict(x)

    def test_refit_model_dispatch(self):
        """refit_model routes (x, t, y_r, y_c) to each fit signature."""
        import numpy as np

        from repro.causal import TwoPhaseMethod, refit_model
        from repro.causal.meta import SLearner
        from repro.core.drp import DRPModel
        from repro.trees import DecisionTreeRegressor

        from _model_zoo import T as t, X as x, Y_C as y_c, Y_R as y_r

        for model in (
            DecisionTreeRegressor(max_depth=3),  # fit(x, y)
            SLearner(random_state=0),  # fit(x, y, t)
            DRPModel(hidden=10, epochs=2, n_restarts=1, patience=None,
                     random_state=0),  # fit(x, t, y_r, y_c)
            TwoPhaseMethod(SLearner(random_state=0),
                           SLearner(random_state=1)),  # fit(x, y_r, y_c, t)
        ):
            fitted = refit_model(model, x, t, y_r, y_c)
            assert fitted is model
            scores = np.asarray(fitted.uplift_scores(ZOO_X_EVAL))
            assert scores.shape[0] == ZOO_X_EVAL.shape[0]


class TestUpliftModelInterface:
    """Every zoo member implements the UpliftModel contract."""

    @pytest.mark.parametrize(
        "cls",
        [
            repro.SLearner,
            repro.TLearner,
            repro.XLearner,
            repro.CausalForestUplift,
            repro.TARNet,
            repro.DragonNet,
            repro.OffsetNet,
            repro.SNet,
        ],
    )
    def test_is_uplift_model(self, cls):
        from repro.causal.base import UpliftModel

        assert issubclass(cls, UpliftModel)
        assert callable(getattr(cls, "fit"))
        assert callable(getattr(cls, "predict_uplift"))

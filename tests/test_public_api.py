"""Public-API contract tests: exports resolve, are documented, and cohere."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = (
    "repro.ab",
    "repro.causal",
    "repro.causal.meta",
    "repro.causal.neural",
    "repro.core",
    "repro.data",
    "repro.linear",
    "repro.metrics",
    "repro.nn",
    "repro.obs",
    "repro.runtime",
    "repro.serving",
    "repro.trees",
    "repro.utils",
)


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_headline_api_present(self):
        for name in (
            "RobustDRP",
            "DRPModel",
            "DirectRank",
            "TwoPhaseMethod",
            "make_setting",
            "aucc",
            "greedy_allocation",
            "ABTest",
            "Platform",
            "PolicyReplay",
            "ModelRegistry",
            "ScoringEngine",
            "BudgetPacer",
            "TrafficReplay",
        ):
            assert hasattr(repro, name)


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_importable(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", ()):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


class TestDocstrings:
    @pytest.mark.parametrize(
        "obj",
        [
            repro.RobustDRP,
            repro.DRPModel,
            repro.DirectRank,
            repro.TwoPhaseMethod,
            repro.TARNet,
            repro.DragonNet,
            repro.OffsetNet,
            repro.SNet,
            repro.SLearner,
            repro.TLearner,
            repro.XLearner,
            repro.CausalForestUplift,
            repro.ConformalCalibrator,
            repro.HeuristicCalibration,
            repro.RoiStarEstimator,
            repro.IsotonicRoiRecalibration,
            repro.RCTDataset,
            repro.Platform,
            repro.ABTest,
        ],
    )
    def test_public_classes_documented(self, obj):
        assert inspect.getdoc(obj), f"{obj.__name__} lacks a docstring"

    @pytest.mark.parametrize(
        "func",
        [
            repro.aucc,
            repro.cost_curve,
            repro.qini_coefficient,
            repro.greedy_allocation,
            repro.greedy_allocation_by_roi,
            repro.binary_search_roi_star,
            repro.make_setting,
            repro.criteo_uplift_v2,
            repro.meituan_lift,
            repro.alibaba_lift,
            repro.exponential_tilt_shift,
            repro.make_tpm,
        ],
    )
    def test_public_functions_documented(self, func):
        assert inspect.getdoc(func), f"{func.__name__} lacks a docstring"


class TestUpliftModelInterface:
    """Every zoo member implements the UpliftModel contract."""

    @pytest.mark.parametrize(
        "cls",
        [
            repro.SLearner,
            repro.TLearner,
            repro.XLearner,
            repro.CausalForestUplift,
            repro.TARNet,
            repro.DragonNet,
            repro.OffsetNet,
            repro.SNet,
        ],
    )
    def test_is_uplift_model(self, cls):
        from repro.causal.base import UpliftModel

        assert issubclass(cls, UpliftModel)
        assert callable(getattr(cls, "fit"))
        assert callable(getattr(cls, "predict_uplift"))

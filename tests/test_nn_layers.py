"""Tests for repro.nn.layers."""

import numpy as np
import pytest

from repro.nn.layers import Activation, Dense, Dropout


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 5, rng=0)
        out = layer.forward(np.ones((4, 3)))
        assert out.shape == (4, 5)

    def test_forward_affine(self):
        layer = Dense(2, 1, rng=0)
        layer.weight[...] = [[2.0], [3.0]]
        layer.bias[...] = [1.0]
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(6.0)

    def test_wrong_input_dim_raises(self):
        layer = Dense(3, 5, rng=0)
        with pytest.raises(ValueError, match="expected input with 3 features"):
            layer.forward(np.ones((4, 2)))

    def test_backward_before_forward_raises(self):
        layer = Dense(2, 2, rng=0)
        with pytest.raises(RuntimeError, match="backward"):
            layer.backward(np.ones((1, 2)))

    def test_backward_after_inference_forward_raises(self):
        layer = Dense(2, 2, rng=0)
        layer.forward(np.ones((1, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_gradients_accumulate(self):
        layer = Dense(2, 1, rng=0)
        x = np.ones((3, 2))
        layer.forward(x, training=True)
        layer.backward(np.ones((3, 1)))
        first = layer.grad_weight.copy()
        layer.forward(x, training=True)
        layer.backward(np.ones((3, 1)))
        np.testing.assert_allclose(layer.grad_weight, 2 * first)

    def test_zero_grad(self):
        layer = Dense(2, 1, rng=0)
        layer.forward(np.ones((3, 2)), training=True)
        layer.backward(np.ones((3, 1)))
        layer.zero_grad()
        assert np.all(layer.grad_weight == 0.0)
        assert np.all(layer.grad_bias == 0.0)

    def test_parameters_and_gradients_aligned(self):
        layer = Dense(2, 3, rng=0)
        params = layer.parameters()
        grads = layer.gradients()
        assert len(params) == len(grads) == 2
        assert all(p.shape == g.shape for p, g in zip(params, grads))

    def test_he_init(self):
        layer = Dense(100, 50, init="he", rng=0)
        # He std = sqrt(2/100) ~ 0.141
        assert 0.1 < layer.weight.std() < 0.2

    def test_bad_init_raises(self):
        with pytest.raises(ValueError, match="init"):
            Dense(2, 2, init="uniform")


class TestDropout:
    def test_identity_at_inference(self):
        layer = Dropout(0.5, rng=0)
        x = np.random.default_rng(0).normal(size=(10, 4))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_scales_kept_units(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((2000, 10))
        out = layer.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling 1/(1-0.5)
        # roughly half the units survive
        assert 0.4 < (out > 0).mean() < 0.6

    def test_expectation_preserved(self):
        layer = Dropout(0.3, rng=1)
        x = np.ones((5000, 8))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_rate_zero_is_identity_even_training(self):
        layer = Dropout(0.0)
        x = np.ones((3, 3))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_backward_uses_mask(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((10, 4))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        # gradient flows only through kept units, with the same scaling
        np.testing.assert_array_equal(grad, np.where(out > 0, 2.0, 0.0))

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_no_parameters(self):
        assert Dropout(0.2).parameters() == []


class TestActivation:
    def test_relu_forward(self):
        layer = Activation("relu")
        out = layer.forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_backward_chain(self):
        layer = Activation("relu")
        x = np.array([[-1.0, 2.0]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[1.0, 1.0]]))
        np.testing.assert_array_equal(grad, [[0.0, 1.0]])

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="Unknown activation"):
            Activation("swish")

    def test_backward_requires_training_forward(self):
        layer = Activation("tanh")
        layer.forward(np.ones((1, 1)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 1)))

    @pytest.mark.parametrize("name", ["relu", "elu", "tanh", "sigmoid", "linear"])
    def test_all_activations_roundtrip(self, name):
        layer = Activation(name)
        x = np.random.default_rng(0).normal(size=(5, 3))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        assert out.shape == grad.shape == x.shape

"""Sharded serving fleet pins: equivalence, merge accounting, pacing.

The load-bearing guarantees of :mod:`repro.serving.sharding`:

* a single-shard fleet over the :class:`SerialBackend` is
  **bit-identical** to a plain :class:`ScoringEngine` on the same
  request stream — scores, stats, and version attribution;
* fleet accounting is merge-*derived*: ``stats`` equals the sum of the
  per-shard snapshots because it is computed from them, and the pinned
  equality proves no second accounting path exists;
* lifecycle mutations on the parent registry reach every shard replica
  before subsequent traffic (revision-gated sync on FIFO lanes);
* :class:`ShardedBudgetPacer` keeps the slice-sum invariant
  ``Σ budgets == B`` across rebalance ticks and fleet spend strictly
  under ``B``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import (
    ManualClock,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.serving import (
    ModelRegistry,
    ScoringEngine,
    ShardedBudgetPacer,
    ShardedScoringEngine,
)
from repro.serving.sharding import _SHARD_ENGINES


class LinearROI:
    """Module-level (picklable) deterministic scorer: x @ w."""

    def __init__(self, w):
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x):
        return np.atleast_2d(np.asarray(x, dtype=float)) @ self.w


W_CHAMPION = [1.0, -0.5, 0.25, 2.0]
W_CHALLENGER = [0.5, 0.5, -0.25, 1.0]


def make_registry(split: float = 0.2, seed: int = 7) -> ModelRegistry:
    registry = ModelRegistry(traffic_split=split, random_state=seed)
    registry.register(LinearROI(W_CHAMPION), promote=True)
    registry.register(LinearROI(W_CHALLENGER))
    return registry


@pytest.fixture
def rows():
    return np.random.default_rng(0).normal(size=(400, 4))


# ---------------------------------------------------------------------------
# single-engine equivalence (the correctness anchor)
# ---------------------------------------------------------------------------
class TestSingleShardEquivalence:
    def test_bit_identical_scores_stats_versions(self, rows):
        """1-shard serial fleet == plain engine: same stream in, same
        everything out (keyed, with a live challenger split)."""
        plain = ScoringEngine(make_registry(), batch_size=16)
        fleet = ShardedScoringEngine(make_registry(), n_shards=1, batch_size=16)
        for i, row in enumerate(rows):
            assert plain.submit(row, key=i) == fleet.submit(row, key=i)
        plain.flush()
        plain.join()
        fleet.flush()
        for rid in range(len(rows)):
            assert fleet.has_result(rid) and plain.has_result(rid)
            assert fleet.version_of(rid) == plain.version_of(rid)
            assert fleet.take(rid) == plain.take(rid)
        assert fleet.stats == plain.stats
        fleet.close()

    def test_keyless_rng_routing_matches(self, rows):
        """Keyless requests draw the replica's routing RNG in the same
        order the parent would — same split decisions, same scores."""
        plain = ScoringEngine(make_registry(), batch_size=32)
        fleet = ShardedScoringEngine(make_registry(), n_shards=1, batch_size=32)
        for row in rows[:128]:
            plain.submit(row)
            fleet.submit(row)
        plain.flush()
        fleet.flush()
        for rid in range(128):
            assert fleet.version_of(rid) == plain.version_of(rid)
            assert fleet.take(rid) == plain.take(rid)
        fleet.close()

    def test_cache_hits_identical(self):
        """Repeated rows hit the shard LRU exactly like the plain engine."""
        repeated = np.tile(np.arange(8.0).reshape(2, 4), (30, 1))
        plain = ScoringEngine(make_registry(split=0.0), batch_size=8, cache_size=64)
        fleet = ShardedScoringEngine(
            make_registry(split=0.0), n_shards=1, batch_size=8, cache_size=64
        )
        for i, row in enumerate(repeated):
            plain.submit(row, key=i)
            fleet.submit(row, key=i)
        plain.flush()
        fleet.flush()
        assert fleet.stats == plain.stats
        assert fleet.stats["cache_hits"] > 0
        fleet.close()

    def test_dispatch_size_does_not_change_results(self, rows):
        """Transport granularity is invisible: worker batch_size governs
        flush boundaries, so any dispatch_size yields identical stats."""
        baseline = None
        for dispatch in (1, 7, 16, 64):
            fleet = ShardedScoringEngine(
                make_registry(), n_shards=1, batch_size=16, dispatch_size=dispatch
            )
            for i, row in enumerate(rows[:200]):
                fleet.submit(row, key=i)
            fleet.flush()
            scores = [fleet.take(r) for r in range(200)]
            stats = fleet.stats
            if baseline is None:
                baseline = (scores, stats)
            else:
                assert scores == baseline[0]
                assert stats == baseline[1]
            fleet.close()


# ---------------------------------------------------------------------------
# fleet submit_batch: one call, N submits' semantics
# ---------------------------------------------------------------------------
class TestFleetSubmitBatch:
    """``fleet.submit_batch(X)`` routes and scores exactly like N
    ``submit`` calls — keyed rows stick to their hash shard, keyless
    rows walk the round-robin cursor — across every backend and shard
    count, so results and merged stats match the per-row stream."""

    def _per_row_reference(self, rows, keys, **fleet_kwargs):
        fleet = ShardedScoringEngine(make_registry(), **fleet_kwargs)
        ids = [fleet.submit(row, key=k) for row, k in zip(rows, keys)]
        fleet.flush()
        scores = [fleet.take(rid) for rid in ids]
        stats = fleet.stats
        fleet.close()
        return scores, stats

    def test_keyed_matches_per_row_submits(self, rows):
        keys = [f"user-{i}" for i in range(len(rows))]
        expected, ref_stats = self._per_row_reference(
            rows, keys, n_shards=4, batch_size=16
        )
        fleet = ShardedScoringEngine(make_registry(), n_shards=4, batch_size=16)
        ids = fleet.submit_batch(rows, keys=keys)
        assert isinstance(ids, range) and len(ids) == len(rows)
        fleet.flush()
        assert [fleet.take(rid) for rid in ids] == expected
        assert fleet.stats == ref_stats
        fleet.close()

    def test_keyless_round_robin_matches(self, rows):
        expected, ref_stats = self._per_row_reference(
            rows[:150], [None] * 150, n_shards=3, batch_size=16
        )
        fleet = ShardedScoringEngine(make_registry(), n_shards=3, batch_size=16)
        ids = fleet.submit_batch(rows[:150])
        fleet.flush()
        assert [fleet.take(rid) for rid in ids] == expected
        assert fleet.stats == ref_stats
        # the round-robin cursor advanced exactly n places
        assert fleet.shard_of(None) == 150 % 3
        fleet.close()

    def test_partial_dispatch_then_more_batches(self, rows):
        """Blocks smaller than dispatch_size buffer parent-side and ship
        with the next batch — boundaries only affect transport, never
        results."""
        expected, ref_stats = self._per_row_reference(
            rows[:90], list(range(90)), n_shards=2, batch_size=8, dispatch_size=64
        )
        fleet = ShardedScoringEngine(
            make_registry(), n_shards=2, batch_size=8, dispatch_size=64
        )
        got = []
        for start in (0, 30, 60):
            ids = fleet.submit_batch(
                rows[start : start + 30], keys=list(range(start, start + 30))
            )
            got.append(ids)
        fleet.flush()
        scores = [fleet.take(rid) for ids in got for rid in ids]
        assert scores == expected
        assert fleet.stats == ref_stats
        fleet.close()

    def test_thread_and_process_backends_match_serial(self, rows):
        keys = list(range(120))
        expected, _ = self._per_row_reference(
            rows[:120], keys, n_shards=2, batch_size=32
        )
        for backend_cls in (ThreadBackend, ProcessBackend):
            backend = backend_cls(n_workers=2)
            try:
                with ShardedScoringEngine(
                    make_registry(), n_shards=2, batch_size=32, backend=backend
                ) as fleet:
                    ids = fleet.submit_batch(rows[:120], keys=keys)
                    fleet.flush()
                    assert [fleet.take(rid) for rid in ids] == expected
                    assert fleet.stats["requests"] == 120
            finally:
                backend.shutdown()

    def test_shard_count_does_not_change_scores(self, rows):
        """With a deterministic champion, 1-shard and 4-shard fleets
        score the same keyed stream identically."""
        scores = {}
        for n_shards in (1, 4):
            fleet = ShardedScoringEngine(
                make_registry(split=0.0), n_shards=n_shards, batch_size=16
            )
            ids = fleet.submit_batch(rows, keys=list(range(len(rows))))
            fleet.flush()
            scores[n_shards] = [fleet.take(rid) for rid in ids]
            fleet.close()
        assert scores[1] == scores[4]

    def test_latency_sketch_matches_per_row(self, rows):
        """Clocked deadline fleets log the same latencies either way."""
        results = []
        for use_batch in (False, True):
            clock = ManualClock()
            fleet = ShardedScoringEngine(
                make_registry(), n_shards=2, batch_size=8,
                max_latency_ms=50.0, clock=clock,
            )
            if use_batch:
                fleet.submit_batch(rows[:64], keys=list(range(64)))
            else:
                for i, row in enumerate(rows[:64]):
                    fleet.submit(row, key=i)
            clock.advance(0.003)
            fleet.flush()
            results.append(
                (sorted(fleet.latencies), fleet.latency_hist.snapshot().count)
            )
            fleet.close()
        assert results[0] == results[1]
        assert results[0][1] == 64

    def test_validation_and_empty(self):
        fleet = ShardedScoringEngine(make_registry(), n_shards=2)
        with pytest.raises(ValueError, match="2-D"):
            fleet.submit_batch(np.zeros(4))
        with pytest.raises(ValueError, match="keys"):
            fleet.submit_batch(np.zeros((3, 4)), keys=["a"])
        empty = fleet.submit_batch(np.empty((0, 4)))
        assert isinstance(empty, range) and len(empty) == 0
        assert fleet.stats["requests"] == 0
        fleet.close()


# ---------------------------------------------------------------------------
# merge-derived fleet accounting
# ---------------------------------------------------------------------------
class TestFleetAccounting:
    def test_stats_equal_sum_of_shard_snapshots(self, rows):
        fleet = ShardedScoringEngine(make_registry(), n_shards=4, batch_size=16)
        for i, row in enumerate(rows):
            fleet.submit(row, key=f"user-{i}")
        fleet.flush()
        stats = fleet.stats
        per_shard = fleet.shard_snapshots()
        for name, total in stats.items():
            shard_sum = sum(
                int(snap[f"engine.{name}"].value)
                for snap, _v in per_shard
                if f"engine.{name}" in snap
            )
            assert total == shard_sum, name
        assert stats["requests"] == len(rows)
        # every shard actually took traffic at this key cardinality
        assert all(
            snap["engine.requests"].value > 0 for snap, _v in per_shard
        )
        fleet.close()

    def test_version_stats_sum_across_shards(self, rows):
        fleet = ShardedScoringEngine(make_registry(), n_shards=4, batch_size=16)
        for i, row in enumerate(rows):
            fleet.submit(row, key=i)
        fleet.flush()
        totals = fleet.version_stats()
        assert sum(
            v["requests"] + v["cache_hits"] for v in totals.values()
        ) == len(rows)
        assert set(totals) == {1, 2}  # champion and challenger both served
        fleet.close()

    def test_fleet_metrics_snapshot_merges_shards(self, rows):
        fleet = ShardedScoringEngine(make_registry(), n_shards=2, batch_size=16)
        before = fleet.metrics.snapshot()
        for i, row in enumerate(rows[:100]):
            fleet.submit(row, key=i)
        fleet.flush()
        delta = fleet.metrics.snapshot().delta(before)
        assert delta["engine.requests"].value == 100
        fleet.close()

    def test_merged_latency_quantiles(self, rows):
        """Clocked shards' sketches fold into one fleet distribution."""
        clock = ManualClock()
        fleet = ShardedScoringEngine(
            make_registry(),
            n_shards=2,
            batch_size=8,
            max_latency_ms=50.0,
            clock=clock,
        )
        for i, row in enumerate(rows[:64]):
            fleet.submit(row, key=i)
            clock.advance(0.002)
            fleet.poll()
        fleet.flush()
        merged = fleet.latency_hist.snapshot()
        assert merged.count == 64
        shard_counts = [
            snap["engine.latency_seconds"].count for snap, _v in fleet.shard_snapshots()
        ]
        assert sum(shard_counts) == 64
        assert all(c < 64 for c in shard_counts)  # genuinely distributed
        p95 = fleet.latency_quantile(0.95)
        assert 0.0 <= p95 <= 0.050 * 1.02  # deadline honoured fleet-wide
        assert len(fleet.latencies) == 64
        fleet.close()

    def test_latency_quantile_empty_raises(self):
        fleet = ShardedScoringEngine(make_registry(), n_shards=2)
        with pytest.raises(ValueError, match="no latencies"):
            fleet.latency_quantile(0.5)
        fleet.close()


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------
class TestRouting:
    def test_keyed_routing_sticky_and_spread(self):
        fleet = ShardedScoringEngine(make_registry(), n_shards=4)
        shards = [fleet.shard_of(f"user-{i}") for i in range(1000)]
        again = [fleet.shard_of(f"user-{i}") for i in range(1000)]
        assert shards == again  # deterministic
        counts = np.bincount(shards, minlength=4)
        assert (counts > 150).all()  # roughly balanced
        fleet.close()

    def test_keyless_round_robin(self):
        fleet = ShardedScoringEngine(make_registry(), n_shards=3)
        assert [fleet.shard_of(None) for _ in range(6)] == [0, 1, 2, 0, 1, 2]
        fleet.close()

    def test_score_batch_keyed_and_keyless_parity(self, rows):
        plain = ScoringEngine(make_registry(split=0.0))
        fleet = ShardedScoringEngine(make_registry(split=0.0), n_shards=4)
        # keyless with no active split: chunks all route the champion
        np.testing.assert_array_equal(
            fleet.score_batch(rows), plain.score_batch(rows)
        )
        # keyed: the whole batch goes to one sticky shard
        np.testing.assert_array_equal(
            fleet.score_batch(rows, key="u1"), plain.score_batch(rows, key="u1")
        )
        fleet.close()

    def test_score_convenience_path(self, rows):
        fleet = ShardedScoringEngine(make_registry(split=0.0), n_shards=2)
        expected = float(np.asarray(rows[0]) @ np.asarray(W_CHAMPION))
        assert fleet.score(rows[0], key="x") == pytest.approx(expected)
        fleet.close()


# ---------------------------------------------------------------------------
# lifecycle sync across replicas
# ---------------------------------------------------------------------------
class TestReplicaSync:
    def test_promotion_reaches_every_shard(self, rows):
        fleet = ShardedScoringEngine(make_registry(split=0.0), n_shards=3)
        before = fleet.score_batch(rows[:8])
        fleet.registry.promote(2)  # challenger takes over, parent-side
        after = fleet.score_batch(rows[:8])
        np.testing.assert_array_equal(
            before, np.asarray(rows[:8]) @ np.asarray(W_CHAMPION)
        )
        np.testing.assert_array_equal(
            after, np.asarray(rows[:8]) @ np.asarray(W_CHALLENGER)
        )
        fleet.close()

    def test_new_version_ships_model_to_shards(self, rows):
        fleet = ShardedScoringEngine(make_registry(split=0.0), n_shards=2)
        fleet.score_batch(rows[:4])
        w_new = [3.0, 0.0, 0.0, 0.0]
        fleet.registry.register(LinearROI(w_new), promote=True)
        scores = fleet.score_batch(rows[:8])
        np.testing.assert_array_equal(scores, np.asarray(rows[:8]) @ np.asarray(w_new))
        fleet.close()

    def test_sync_is_revision_gated(self, rows):
        """No lifecycle change → no sync traffic on the lanes."""
        fleet = ShardedScoringEngine(make_registry(), n_shards=2)
        fleet.flush()
        synced = fleet._synced_revision
        for i, row in enumerate(rows[:50]):
            fleet.submit(row, key=i)
        fleet.flush()
        assert fleet._synced_revision == synced
        fleet.registry.traffic_split = 0.5
        fleet.submit(rows[0], key=0)
        assert fleet._synced_revision == fleet.registry.revision != synced
        fleet.close()

    def test_registry_lifecycle_state_roundtrip(self):
        parent = make_registry(split=0.3)
        replica = ModelRegistry()
        replica.apply_lifecycle_state(parent.lifecycle_state())
        assert replica.champion.version == 1
        assert replica.challenger is not None
        assert replica.challenger.version == 2
        assert replica.traffic_split == 0.3
        parent.promote()
        # incremental: replica already knows versions 1 and 2
        state = parent.lifecycle_state(known={1, 2})
        assert state["models"] == {}
        replica.apply_lifecycle_state(state)
        assert replica.champion.version == 2
        assert replica.challenger is None
        assert replica.get(1).stage == "archived"

    def test_lifecycle_state_missing_model_raises(self):
        parent = make_registry()
        replica = ModelRegistry()
        state = parent.lifecycle_state(known={1, 2})  # strips the models
        with pytest.raises(KeyError, match="ships no model"):
            replica.apply_lifecycle_state(state)

    def test_revision_bumps_on_lifecycle_not_on_traffic(self):
        registry = make_registry()
        revision = registry.revision
        registry.route(key="u")
        registry.record_outcome(1, True, 1.0, 0.5)
        assert registry.revision == revision
        registry.promote()
        assert registry.revision == revision + 1
        registry.register(LinearROI(W_CHAMPION))
        assert registry.revision == revision + 2
        registry.demote()
        assert registry.revision == revision + 3
        registry.rollback()
        assert registry.revision == revision + 4


# ---------------------------------------------------------------------------
# backends: lanes, processes, threads
# ---------------------------------------------------------------------------
class TestBackends:
    def test_process_backend_two_shards(self, rows):
        backend = ProcessBackend(n_workers=2)
        try:
            with ShardedScoringEngine(
                make_registry(), n_shards=2, batch_size=32, backend=backend
            ) as fleet:
                for i, row in enumerate(rows[:120]):
                    fleet.submit(row, key=i)
                fleet.flush()
                scores = {r: fleet.take(r) for r in range(120)}
                # process replicas score exactly like an in-process engine
                reference = ShardedScoringEngine(
                    make_registry(), n_shards=2, batch_size=32
                )
                for i, row in enumerate(rows[:120]):
                    reference.submit(row, key=i)
                reference.flush()
                assert scores == {r: reference.take(r) for r in range(120)}
                assert fleet.stats["requests"] == 120
                reference.close()
                # shards really live out-of-process: nothing local
                assert (fleet._fleet_id, 0) not in _SHARD_ENGINES
        finally:
            backend.shutdown()

    def test_thread_backend_fleet(self, rows):
        backend = ThreadBackend(n_workers=2)
        try:
            with ShardedScoringEngine(
                make_registry(), n_shards=2, batch_size=16, backend=backend
            ) as fleet:
                for i, row in enumerate(rows[:100]):
                    fleet.submit(row, key=i)
                fleet.flush()
                assert sum(fleet.has_result(r) for r in range(100)) == 100
                assert fleet.stats["requests"] == 100
        finally:
            backend.shutdown()

    def test_clock_rejected_on_process_backend(self):
        backend = ProcessBackend(n_workers=2)
        try:
            with pytest.raises(ValueError, match="process boundary"):
                ShardedScoringEngine(
                    make_registry(), n_shards=2, backend=backend, clock=ManualClock()
                )
        finally:
            backend.shutdown()

    def test_backend_without_lanes_rejected(self):
        class Bare:
            n_workers = 4
            start_count = 0

            def submit(self, fn, *a, **k):  # pragma: no cover
                raise NotImplementedError

            def shutdown(self, wait=True):
                pass

        with pytest.raises(TypeError, match="submit_to"):
            ShardedScoringEngine(make_registry(), n_shards=2, backend=Bare())

    def test_close_is_idempotent_and_drops_shards(self):
        fleet = ShardedScoringEngine(make_registry(), n_shards=2)
        fleet.score_batch(np.zeros((1, 4)))
        fid = fleet._fleet_id
        assert (fid, 0) in _SHARD_ENGINES
        fleet.close()
        fleet.close()
        assert (fid, 0) not in _SHARD_ENGINES
        assert (fid, 1) not in _SHARD_ENGINES


class TestLaneAffinity:
    """The runtime layer underneath: submit_to pins work to one worker."""

    def test_serial_lane_initializer_once_per_lane(self):
        seen = []
        backend = SerialBackend(initializer=lambda lane: seen.append(lane))
        for _ in range(3):
            backend.submit_to(0, lambda: None)
            backend.submit_to(1, lambda: None)
        assert seen == [0, 1]
        backend.shutdown()  # lanes re-initialize after shutdown
        backend.submit_to(0, lambda: None)
        assert seen == [0, 1, 0]

    def test_serial_lane_validation(self):
        backend = SerialBackend()
        with pytest.raises(ValueError, match="lane"):
            backend.submit_to(-1, lambda: None)

    def test_pool_lane_bounds(self):
        backend = ThreadBackend(n_workers=2)
        with pytest.raises(ValueError, match="lane"):
            backend.submit_to(2, lambda: None)
        backend.shutdown()

    def test_lanes_count_as_pool_starts(self):
        backend = ThreadBackend(n_workers=3)
        assert backend.start_count == 0
        backend.submit_to(0, lambda: 1).result()
        backend.submit_to(0, lambda: 2).result()
        backend.submit_to(2, lambda: 3).result()
        assert backend.start_count == 2  # one per distinct lane
        assert backend.running
        backend.shutdown()
        assert not backend.running

    def test_lane_fifo_order(self):
        backend = ThreadBackend(n_workers=1)
        order = []
        futures = [
            backend.submit_to(0, lambda i=i: order.append(i)) for i in range(20)
        ]
        for f in futures:
            f.result()
        assert order == list(range(20))
        backend.shutdown()

    def test_process_lane_pid_affinity(self):
        import os

        backend = ProcessBackend(n_workers=2)
        try:
            pids_lane0 = {backend.submit_to(0, os.getpid).result() for _ in range(3)}
            pids_lane1 = {backend.submit_to(1, os.getpid).result() for _ in range(3)}
            assert len(pids_lane0) == 1  # one long-lived process per lane
            assert len(pids_lane1) == 1
            assert pids_lane0 != pids_lane1
            assert os.getpid() not in pids_lane0 | pids_lane1
        finally:
            backend.shutdown()


# ---------------------------------------------------------------------------
# fleet budget pacing
# ---------------------------------------------------------------------------
class TestShardedBudgetPacer:
    def _traffic(self, n, seed=3):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        costs = np.abs(rng.normal(size=n)) * 0.1 + 0.01
        return scores, costs

    def test_slice_sum_equals_budget_always(self):
        clock = ManualClock()
        pacer = ShardedBudgetPacer(
            50.0, 2000, 4, clock=clock, rebalance_every=1.0, use_roi_floor=False
        )
        scores, costs = self._traffic(2000)
        for s, c in zip(scores, costs):
            pacer.offer(s, c)
            clock.advance(0.01)
            assert sum(pacer.slice_budgets) == pytest.approx(50.0)
        assert pacer.rebalances > 10

    def test_fleet_spend_strictly_under_budget(self):
        clock = ManualClock()
        pacer = ShardedBudgetPacer(
            20.0, 3000, 4, clock=clock, rebalance_every=0.5, use_roi_floor=False
        )
        scores, costs = self._traffic(3000, seed=9)
        for s, c in zip(scores, costs):
            pacer.offer(s, c)
            clock.advance(0.005)
        assert 0.0 < pacer.spent < pacer.budget
        for shard in pacer.shards:
            assert shard.spent <= shard.budget + 1e-9

    def test_rebalance_moves_headroom_to_hot_slices(self):
        """A slice that saw no traffic donates budget to the ones that did."""
        pacer = ShardedBudgetPacer(40.0, 400, 2, use_roi_floor=False)
        scores, costs = self._traffic(200, seed=5)
        for s, c in zip(scores, costs):
            pacer.offer(s, c, key="hot-user")  # sticky: all to one slice
        hot = pacer.shard_of("hot-user")
        cold = 1 - hot
        assert pacer.shards[cold].n_seen == 0
        budgets = pacer.rebalance()
        # the cold slice's remaining-horizon share is now larger than the
        # hot slice's, so it holds more *unspent* headroom; the hot slice
        # keeps everything it spent
        assert budgets[hot] >= pacer.shards[hot].spent
        assert sum(budgets) == pytest.approx(40.0)
        assert pacer.rebalances == 1

    def test_keyless_offers_round_robin(self):
        pacer = ShardedBudgetPacer(10.0, 100, 2, use_roi_floor=False)
        for i in range(10):
            pacer.offer(0.0, 0.01)
            assert pacer._last_offer_shard == i % 2

    def test_observe_outcome_follows_offer(self):
        pacer = ShardedBudgetPacer(10.0, 100, 2, use_roi_floor=True)
        pacer.offer(1.0, 0.01, key="a")
        shard = pacer.shard_of("a")
        pacer.observe_outcome(1, 0.5, 0.1)
        assert len(pacer.shards[shard]._outcomes) == 1

    def test_surface_matches_single_pacer(self):
        pacer = ShardedBudgetPacer(10.0, 100, 4, use_roi_floor=False)
        scores, costs = self._traffic(100)
        for s, c in zip(scores, costs):
            pacer.offer(s, c)
        assert pacer.n_seen == 100
        assert pacer.progress == pytest.approx(1.0)
        assert 0.0 <= pacer.admit_rate <= 1.0
        assert pacer.remaining == pytest.approx(pacer.budget - pacer.spent)
        assert all(isinstance(e, tuple) and len(e) == 3 for e in pacer.history)

    def test_rebalance_every_defaults_to_wall_clock(self):
        from repro.runtime import SystemClock

        pacer = ShardedBudgetPacer(10.0, 100, 2, rebalance_every=0.5)
        assert isinstance(pacer.clock, SystemClock)
        assert pacer._loop is not None
        without = ShardedBudgetPacer(10.0, 100, 2)
        assert without._loop is None

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            ShardedBudgetPacer(10.0, 100, 0)
        with pytest.raises(ValueError, match="horizon"):
            ShardedBudgetPacer(10.0, 2, 4)
        with pytest.raises(ValueError, match="rebalance_every"):
            ShardedBudgetPacer(10.0, 100, 2, clock=ManualClock(), rebalance_every=0.0)

    def test_rebudget_below_spend_rejected(self):
        from repro.serving import BudgetPacer

        pacer = BudgetPacer(10.0, 100, warmup=2)
        pacer.spent = 5.0
        with pytest.raises(ValueError, match="below already-realised spend"):
            pacer.rebudget(4.0)
        pacer.rebudget(7.5)
        assert pacer.budget == 7.5


# ---------------------------------------------------------------------------
# end-to-end: the fleet under real replayed traffic
# ---------------------------------------------------------------------------
class TestFleetEndToEnd:
    @pytest.fixture(scope="class")
    def probe_weights(self):
        from repro.data import criteo_uplift_v2

        probe = criteo_uplift_v2(4000, random_state=5)
        return np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]

    def test_traffic_replay_over_fleet(self, probe_weights):
        from repro.ab.platform import Platform
        from repro.serving import TrafficReplay

        platform = Platform(dataset="criteo", random_state=0)
        fleet = ShardedScoringEngine(
            LinearROI(probe_weights), n_shards=4, batch_size=128, cache_size=0
        )
        result = TrafficReplay(platform, fleet).replay_day(3000, budget_fraction=0.3)
        assert result.n_events == 3000
        assert result.spend <= result.budget + 1e-9
        assert result.engine_stats["requests"] == 3000
        assert result.revenue_ratio > 0.8
        fleet.close()

    def test_traffic_replay_with_fleet_pacer(self, probe_weights):
        from repro.ab.platform import Platform
        from repro.serving import TrafficReplay

        platform = Platform(dataset="criteo", random_state=1)
        fleet = ShardedScoringEngine(
            LinearROI(probe_weights), n_shards=4, batch_size=128, cache_size=0
        )
        budget = 4.0
        pacer = ShardedBudgetPacer(budget, 3000, 4, use_roi_floor=False)
        result = TrafficReplay(platform, fleet).replay_day(3000, pacer=pacer)
        assert result.spend < budget  # strict: fleet never exhausts B
        assert result.spend == pytest.approx(pacer.spent)
        assert pacer.n_seen == 3000
        fleet.close()

    def test_promoter_campaign_on_fleet(self, probe_weights):
        """An AutoPromoter driving the parent registry steers the fleet:
        after promotion the shards serve the challenger's scores."""
        from repro.serving import AutoPromoter

        clock = ManualClock()
        registry = ModelRegistry(traffic_split=0.3, random_state=11)
        registry.register(LinearROI(np.zeros_like(probe_weights)), promote=True)
        registry.register(LinearROI(probe_weights))
        promoter = AutoPromoter(
            registry,
            clock=clock,
            ramp=(0.3,),
            step_every_s=1.0,
            min_decided=50,
            check_every=10,
            hold_decided=100_000,
        )
        fleet = ShardedScoringEngine(registry, n_shards=2, batch_size=32)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(600, len(probe_weights)))
        for i, row in enumerate(x):
            rid = fleet.submit(row, key=i)
            fleet.flush()
            vid = fleet.version_of(rid)
            fleet.take(rid)
            # challenger is strictly better: its outcomes dominate
            net = 1.0 if vid == 2 else 0.0
            promoter.observe(vid, True, net, 0.0)
            clock.advance(0.01)
            promoter.poll()
            if registry.champion.version == 2:
                break
        assert registry.champion.version == 2
        scores = fleet.score_batch(x[:8])
        np.testing.assert_array_equal(scores, x[:8] @ probe_weights)
        fleet.close()

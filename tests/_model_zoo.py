"""Shared model zoo: every public model with build/train/predict recipes.

Single source of truth for cross-cutting contract tests
(``test_pickling.py``'s serialization pins, ``test_public_api.py``'s
:class:`~repro.causal.base.TrainableModel` protocol pins): each entry
knows how to *build* an unfitted instance, *train* any instance of its
class on the shared synthetic RCT, and *predict* with its natural
entry point — so a test can exercise fit → clone_unfit → refit →
pickle without model-specific knowledge.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

import numpy as np

from repro.causal.forest_uplift import CausalForestUplift
from repro.causal.meta import SLearner, TLearner, XLearner
from repro.causal.neural import DragonNet, OffsetNet, SNet, TARNet
from repro.core.direct_rank import DirectRank
from repro.core.drp import DRPModel
from repro.core.rdrp import RobustDRP
from repro.linear import LogisticRegression, RidgeRegression
from repro.trees import (
    CausalForest,
    CausalTree,
    DecisionTreeRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)


def _rct(n: int = 220, d: int = 5, seed: int = 11):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    t = (rng.random(n) < 0.5).astype(int)
    tau_r = 0.8 * x[:, 0] + 0.3
    y_r = 0.5 * x[:, 1] + t * tau_r + 0.1 * rng.normal(size=n)
    y_c = np.abs(0.4 * x[:, 2] + t * 0.5 + 0.1 * rng.normal(size=n)) + 0.05
    y = y_r - y_c
    return x, t, y, y_r, y_c


X, T, Y, Y_R, Y_C = _rct()
X_EVAL = np.random.default_rng(99).normal(size=(64, X.shape[1]))


class Case(NamedTuple):
    """One zoo member: ``train(build())`` yields a fitted model."""

    name: str
    build: Callable[[], object]
    train: Callable[[object], object]
    predict: Callable[[object, np.ndarray], np.ndarray]


CASES = [
    Case(
        "ridge",
        lambda: RidgeRegression(alpha=0.5),
        lambda m: m.fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    Case(
        "logistic",
        lambda: LogisticRegression(max_iter=50),
        lambda m: m.fit(X, (Y > 0).astype(int)),
        lambda m, x: m.predict_proba(x),
    ),
    Case(
        "tree",
        lambda: DecisionTreeRegressor(max_depth=4),
        lambda m: m.fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    Case(
        "forest",
        lambda: RandomForestRegressor(n_estimators=8, max_depth=4, random_state=0),
        lambda m: m.fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    Case(
        "boosting",
        lambda: GradientBoostingRegressor(n_estimators=8, max_depth=2),
        lambda m: m.fit(X, Y),
        lambda m, x: m.predict(x),
    ),
    Case(
        "causal_tree",
        lambda: CausalTree(max_depth=4),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict(x),
    ),
    Case(
        "causal_forest",
        lambda: CausalForest(n_estimators=6, max_depth=3, random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict(x),
    ),
    Case(
        "causal_forest_uplift",
        lambda: CausalForestUplift(n_estimators=6, max_depth=3, random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "s_learner",
        lambda: SLearner(random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "t_learner",
        lambda: TLearner(random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "x_learner",
        lambda: XLearner(random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "tarnet",
        lambda: TARNet(hidden=8, epochs=3, random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "dragonnet",
        lambda: DragonNet(hidden=8, epochs=3, random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "offsetnet",
        lambda: OffsetNet(hidden=8, epochs=3, random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "snet",
        lambda: SNet(hidden=8, epochs=3, random_state=0),
        lambda m: m.fit(X, Y, T),
        lambda m, x: m.predict_uplift(x),
    ),
    Case(
        "drp",
        lambda: DRPModel(
            hidden=10, epochs=3, n_restarts=1, patience=None, random_state=0
        ),
        lambda m: m.fit(X, T, Y_R, Y_C),
        lambda m, x: m.predict_roi(x),
    ),
    Case(
        "robust_drp",
        lambda: RobustDRP(
            mc_samples=4, hidden=10, epochs=3, n_restarts=1, patience=None,
            random_state=0,
        ),
        lambda m: m.fit(X, T, Y_R, Y_C).calibrate(X, T, Y_R, Y_C),
        lambda m, x: m.predict_roi(x),
    ),
    Case(
        "direct_rank",
        lambda: DirectRank(hidden=10, epochs=3, random_state=0),
        lambda m: m.fit(X, T, Y_R, Y_C),
        lambda m, x: m.predict_roi(x),
    ),
]

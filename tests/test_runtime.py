"""Tests for the execution layer (``repro.runtime``) and its consumers.

Covers the backend contract (lazy start, reuse, restart, exception
transport), the clock/deadline primitives, and the cross-layer
guarantees the runtime refactor exists for: chunked generation on a
*shared* pool stays bit-identical to serial, and a multi-day parallel
``ABTest``/``PolicyReplay`` run starts **exactly one** worker pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ab.experiment import ABTest
from repro.ab.platform import Platform
from repro.ab.replay import PolicyReplay
from repro.data.settings import iter_dataset_chunks
from repro.runtime import (
    DeadlineLoop,
    ExecutionBackend,
    ManualClock,
    ProcessBackend,
    SerialBackend,
    SystemClock,
    ThreadBackend,
    resolve_n_workers,
)


def _square(v):
    """Module-level so ProcessBackend can pickle it."""
    return v * v


def _boom():
    raise RuntimeError("worker exploded")


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------
class TestSerialBackend:
    def test_submit_runs_inline_and_future_is_done(self):
        backend = SerialBackend()
        future = backend.submit(_square, 7)
        assert future.done()
        assert future.result() == 49

    def test_exception_is_carried_not_raised_at_submit(self):
        backend = SerialBackend()
        future = backend.submit(_boom)
        assert future.done()
        with pytest.raises(RuntimeError, match="exploded"):
            future.result()

    def test_no_pool_ever_starts(self):
        backend = SerialBackend()
        for v in range(5):
            backend.submit(_square, v)
        assert backend.start_count == 0
        assert backend.n_workers == 1

    def test_context_manager_and_protocol(self):
        with SerialBackend() as backend:
            assert isinstance(backend, ExecutionBackend)
            assert backend.submit(_square, 3).result() == 9


@pytest.mark.parametrize("backend_cls", [ThreadBackend, ProcessBackend])
class TestPoolBackends:
    def test_lazy_start_and_reuse(self, backend_cls):
        with backend_cls(2) as backend:
            assert backend.start_count == 0  # constructing costs nothing
            assert not backend.running
            results = [backend.submit(_square, v).result() for v in range(6)]
            assert results == [v * v for v in range(6)]
            assert backend.start_count == 1  # every submit shared one pool
            assert backend.running

    def test_shutdown_then_restart_counts_again(self, backend_cls):
        backend = backend_cls(2)
        backend.submit(_square, 2).result()
        backend.shutdown()
        assert not backend.running
        assert backend.submit(_square, 3).result() == 9  # usable again
        assert backend.start_count == 2
        backend.shutdown()

    def test_shutdown_idempotent(self, backend_cls):
        backend = backend_cls(1)
        backend.shutdown()  # never started: fine
        backend.submit(_square, 2).result()
        backend.shutdown()
        backend.shutdown()

    def test_worker_exception_carried_by_future(self, backend_cls):
        with backend_cls(1) as backend:
            with pytest.raises(RuntimeError, match="exploded"):
                backend.submit(_boom).result()

    def test_invalid_n_workers(self, backend_cls):
        with pytest.raises(ValueError, match="n_workers"):
            backend_cls(0)


class TestResolveNWorkers:
    def test_none_means_all_cpus(self):
        assert resolve_n_workers(None) >= 1

    def test_passthrough_and_validation(self):
        assert resolve_n_workers(3) == 3
        with pytest.raises(ValueError, match="n_workers"):
            resolve_n_workers(-1)


# ---------------------------------------------------------------------------
# clocks and the deadline loop
# ---------------------------------------------------------------------------
class TestClocks:
    def test_manual_clock_only_moves_when_told(self):
        clock = ManualClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.advance(2.5) == 12.5
        assert clock.now() == 12.5

    def test_manual_clock_rejects_negative_advance(self):
        with pytest.raises(ValueError, match="negative"):
            ManualClock().advance(-1.0)

    def test_system_clock_is_monotone(self):
        clock = SystemClock()
        a = clock.now()
        b = clock.now()
        assert b >= a


class TestDeadlineLoop:
    def test_fires_only_once_due_and_in_deadline_order(self):
        clock = ManualClock()
        loop = DeadlineLoop(clock)
        fired: list[str] = []
        loop.schedule("b", 2.0, lambda: fired.append("b"))
        loop.schedule("a", 1.0, lambda: fired.append("a"))
        assert loop.poll() == 0  # nothing due yet
        assert fired == []
        clock.advance(1.5)
        assert loop.poll() == 1
        assert fired == ["a"]
        clock.advance(1.0)
        assert loop.poll() == 1
        assert fired == ["a", "b"]
        assert len(loop) == 0

    def test_reschedule_same_key_replaces(self):
        clock = ManualClock()
        loop = DeadlineLoop(clock)
        fired: list[int] = []
        loop.schedule("k", 1.0, lambda: fired.append(1))
        loop.schedule("k", 5.0, lambda: fired.append(2))
        clock.advance(2.0)
        assert loop.poll() == 0  # the 1.0 deadline no longer exists
        clock.advance(4.0)
        assert loop.poll() == 1
        assert fired == [2]

    def test_cancel(self):
        clock = ManualClock()
        loop = DeadlineLoop(clock)
        loop.schedule_in("k", 1.0, lambda: None)
        assert loop.next_deadline() == 1.0
        assert loop.cancel("k") is True
        assert loop.cancel("k") is False
        clock.advance(2.0)
        assert loop.poll() == 0
        assert loop.next_deadline() is None

    def test_schedule_in_rejects_negative_delay(self):
        loop = DeadlineLoop(ManualClock())
        with pytest.raises(ValueError, match="delay"):
            loop.schedule_in("k", -0.1, lambda: None)

    def test_callback_may_reschedule_itself(self):
        clock = ManualClock()
        loop = DeadlineLoop(clock)
        ticks: list[float] = []

        def tick():
            ticks.append(clock.now())
            if len(ticks) < 3:
                loop.schedule_in("tick", 1.0, tick)

        loop.schedule_in("tick", 1.0, tick)
        for _ in range(5):
            clock.advance(1.0)
            loop.poll()
        assert ticks == [1.0, 2.0, 3.0]


# ---------------------------------------------------------------------------
# shared-backend chunk generation
# ---------------------------------------------------------------------------
def _assert_datasets_equal(a, b):
    assert a.n == b.n
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.tau_r, b.tau_r)
    np.testing.assert_array_equal(a.tau_c, b.tau_c)


class TestSharedBackendChunks:
    def test_backend_bit_identical_to_serial(self):
        serial = list(iter_dataset_chunks("criteo", 1200, chunk_size=300, random_state=7))
        with ProcessBackend(2) as backend:
            shared = list(
                iter_dataset_chunks(
                    "criteo", 1200, chunk_size=300, random_state=7, backend=backend
                )
            )
        assert [c.n for c in serial] == [c.n for c in shared]
        for a, b in zip(serial, shared):
            _assert_datasets_equal(a, b)

    def test_thread_backend_works_too(self):
        """The pickling-free variant must yield the same chunks."""
        serial = list(iter_dataset_chunks("criteo", 900, chunk_size=300, random_state=3))
        with ThreadBackend(2) as backend:
            threaded = list(
                iter_dataset_chunks(
                    "criteo", 900, chunk_size=300, random_state=3, backend=backend
                )
            )
        for a, b in zip(serial, threaded):
            _assert_datasets_equal(a, b)

    def test_one_pool_serves_many_calls(self):
        """The whole point: no churn — two draws, one pool startup."""
        with ProcessBackend(2) as backend:
            list(iter_dataset_chunks("criteo", 900, chunk_size=300, random_state=1, backend=backend))
            list(iter_dataset_chunks("criteo", 900, chunk_size=300, random_state=2, backend=backend))
            assert backend.start_count == 1

    def test_backend_not_shut_down_by_iterator(self):
        with ProcessBackend(2) as backend:
            list(iter_dataset_chunks("criteo", 700, chunk_size=300, random_state=0, backend=backend))
            assert backend.running  # the iterator borrowed, not owned
            assert backend.submit(_square, 4).result() == 16

    def test_explicit_parallel_false_disables_platform_backend(self):
        """A per-draw parallel=False must force a fully in-process draw
        even when the platform carries a configured backend (nested
        pools inside a worker process are forbidden)."""
        with ProcessBackend(2) as backend:
            platform = Platform(
                dataset="criteo", chunk_size=300, random_state=9, backend=backend
            )
            cohort = platform.daily_cohort(700, day=1, parallel=False)
            assert backend.start_count == 0  # the pool never started
        serial = Platform(dataset="criteo", chunk_size=300, random_state=9)
        np.testing.assert_array_equal(cohort.x, serial.daily_cohort(700, day=1).x)

    def test_serial_width_backend_takes_serial_path(self):
        backend = SerialBackend()
        serial = list(iter_dataset_chunks("criteo", 700, chunk_size=300, random_state=4))
        via = list(
            iter_dataset_chunks("criteo", 700, chunk_size=300, random_state=4, backend=backend)
        )
        for a, b in zip(serial, via):
            _assert_datasets_equal(a, b)


# ---------------------------------------------------------------------------
# pool reuse across a multi-day experiment (ISSUE satellite)
# ---------------------------------------------------------------------------
def _score_first_feature(x):
    return x[:, 0]


class TestExperimentPoolReuse:
    def _make_platform(self, **kwargs):
        # chunk_size below the cohort so every daily draw is chunked
        return Platform(dataset="criteo", chunk_size=120, random_state=0, **kwargs)

    def _day_tuple(self, day):
        return (
            day.revenue,
            day.incremental_revenue,
            day.spend,
            day.n_treated,
            day.n_users,
        )

    def test_abtest_multi_day_starts_exactly_one_pool(self):
        serial = ABTest(
            self._make_platform(), {"m": _score_first_feature}, random_state=0
        ).run(n_days=3, cohort_size=400)
        with ProcessBackend(2) as backend:
            shared = ABTest(
                self._make_platform(),
                {"m": _score_first_feature},
                random_state=0,
                backend=backend,
            ).run(n_days=3, cohort_size=400)
            # one pool startup across all three days' chunked generation
            assert backend.start_count == 1
        # and the realised experiment is bit-identical to the serial path
        for day_s, day_p in zip(serial.days, shared.days):
            assert self._day_tuple(day_s) == self._day_tuple(day_p)

    def test_abtest_legacy_parallel_uses_one_run_scoped_pool(self, monkeypatch):
        """parallel=True must no longer churn a pool per daily_cohort."""
        import repro.ab.experiment as experiment_module

        created: list[ProcessBackend] = []
        real = experiment_module.ProcessBackend

        def spying(n_workers=None):
            backend = real(n_workers)
            created.append(backend)
            return backend

        monkeypatch.setattr(experiment_module, "ProcessBackend", spying)
        test = ABTest(
            self._make_platform(),
            {"m": _score_first_feature},
            random_state=0,
            parallel=True,
            n_workers=2,
        )
        result = test.run(n_days=3, cohort_size=400)
        assert len(result.days) == 3
        assert len(created) == 1  # one backend for the whole run
        assert created[0].start_count == 1  # which started one pool
        assert not created[0].running  # and was shut down at run end

    def test_platform_level_parallel_gets_one_run_scoped_pool(self, monkeypatch):
        """Platform(parallel=True) under ABTest.run must get the same
        one-pool-per-run treatment as ABTest(parallel=True) — not the
        legacy pool-per-daily_cohort churn."""
        import repro.ab.experiment as experiment_module

        created: list[ProcessBackend] = []
        real = experiment_module.ProcessBackend

        def spying(n_workers=None):
            backend = real(n_workers)
            created.append(backend)
            return backend

        monkeypatch.setattr(experiment_module, "ProcessBackend", spying)
        serial = ABTest(
            self._make_platform(), {"m": _score_first_feature}, random_state=0
        ).run(n_days=3, cohort_size=400)
        pooled = ABTest(
            self._make_platform(parallel=True, n_workers=2),
            {"m": _score_first_feature},
            random_state=0,
        ).run(n_days=3, cohort_size=400)
        assert len(created) == 1  # one run-scoped backend...
        assert created[0].start_count == 1  # ...one pool across 3 days
        assert not created[0].running  # shut down at run end
        for day_s, day_p in zip(serial.days, pooled.days):
            assert self._day_tuple(day_s) == self._day_tuple(day_p)

    def test_experiment_parallel_false_forces_serial(self, monkeypatch):
        """The tri-state override: ABTest(parallel=False) must run fully
        in-process even over Platform(parallel=True)."""
        import repro.ab.experiment as experiment_module

        created: list[object] = []
        real = experiment_module.ProcessBackend

        def spying(n_workers=None):
            backend = real(n_workers)
            created.append(backend)
            return backend

        monkeypatch.setattr(experiment_module, "ProcessBackend", spying)
        serial = ABTest(
            self._make_platform(parallel=True, n_workers=2),
            {"m": _score_first_feature},
            random_state=0,
            parallel=False,
        ).run(n_days=2, cohort_size=400)
        assert created == []  # no pool anywhere: experiment forced serial
        plain = ABTest(
            self._make_platform(), {"m": _score_first_feature}, random_state=0
        ).run(n_days=2, cohort_size=400)
        for day_s, day_p in zip(serial.days, plain.days):
            assert self._day_tuple(day_s) == self._day_tuple(day_p)

    def test_policy_replay_shares_the_backend(self):
        sets = {
            "a": {"m": _score_first_feature},
            "b": {"m": lambda x: -x[:, 0]},
        }
        serial = PolicyReplay(
            self._make_platform(), sets, random_state=5
        ).run(n_days=2, cohort_size=400)
        with ProcessBackend(2) as backend:
            shared = PolicyReplay(
                self._make_platform(), sets, random_state=5, backend=backend
            ).run(n_days=2, cohort_size=400)
            assert backend.start_count == 1
        for name in sets:
            for day_s, day_p in zip(
                serial.results[name].days, shared.results[name].days
            ):
                assert day_s == day_p


class TestLegacyParallelKwargDeprecation:
    """``parallel=``/``n_workers=`` are deprecated in favour of ``backend=``.

    The legacy spellings must keep working bit-identically (each entry
    point still honours them), but now raise a DeprecationWarning so
    callers migrate to passing an ExecutionBackend explicitly.
    """

    def test_platform_warns_on_legacy_kwargs(self):
        from repro.ab.platform import Platform

        with pytest.warns(DeprecationWarning, match="backend="):
            Platform(dataset="criteo", random_state=0, parallel=True, n_workers=2)
        with pytest.warns(DeprecationWarning, match="backend="):
            Platform(dataset="criteo", random_state=0, n_workers=2)

    @staticmethod
    def _policy():
        # a Policy is any callable x -> scores
        return {"first-feature": lambda x: x[:, 0]}

    def test_abtest_and_policy_replay_warn(self):
        from repro.ab import ABTest, PolicyReplay
        from repro.ab.platform import Platform

        platform = Platform(dataset="criteo", random_state=0)
        with pytest.warns(DeprecationWarning, match="backend="):
            ABTest(platform, self._policy(), parallel=False)
        with pytest.warns(DeprecationWarning, match="backend="):
            PolicyReplay(platform, {"set": self._policy()}, n_workers=2)

    def test_iter_dataset_chunks_warns(self):
        from repro.data.settings import iter_dataset_chunks

        with pytest.warns(DeprecationWarning, match="backend="):
            chunks = iter_dataset_chunks(
                "criteo", n=300, chunk_size=100, random_state=0, parallel=True
            )
            next(iter(chunks))

    def test_backend_spelling_stays_silent(self):
        import warnings

        from repro.ab import ABTest, PolicyReplay
        from repro.ab.platform import Platform
        from repro.data.settings import iter_dataset_chunks

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with SerialBackend() as backend:
                platform = Platform(dataset="criteo", random_state=0, backend=backend)
                ABTest(platform, self._policy(), backend=backend)
                PolicyReplay(platform, {"set": self._policy()}, backend=backend)
                for _ in iter_dataset_chunks(
                    "criteo", n=300, chunk_size=100, random_state=0, backend=backend
                ):
                    pass

    def test_legacy_spelling_still_bit_identical(self):
        import warnings

        from repro.ab.platform import Platform

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = Platform(
                dataset="criteo", random_state=5, parallel=True, n_workers=2
            ).daily_cohort(400, day=1)
        modern = Platform(dataset="criteo", random_state=5).daily_cohort(400, day=1)
        assert np.array_equal(legacy.x, modern.x)
        assert np.array_equal(legacy.tau_r, modern.tau_r)

"""Tests for qini/uplift diagnostics and interval statistics."""

import numpy as np
import pytest

from repro.metrics.coverage import interval_statistics
from repro.metrics.uplift_curves import qini_coefficient, qini_curve, uplift_at_k


def single_outcome_rct(n=8000, seed=0):
    rng = np.random.default_rng(seed)
    x_score = rng.random(n)  # true uplift ranking score
    t = rng.integers(0, 2, size=n)
    p = 0.2 + 0.4 * x_score * t
    y = (rng.random(n) < p).astype(float)
    return x_score, t, y


class TestQini:
    def test_oracle_positive_coefficient(self):
        score, t, y = single_outcome_rct()
        assert qini_coefficient(score, t, y) > 0

    def test_random_near_zero(self):
        score, t, y = single_outcome_rct()
        rng = np.random.default_rng(1)
        values = [qini_coefficient(rng.random(len(t)), t, y) for _ in range(5)]
        assert abs(np.mean(values)) < 0.05 * len(t)

    def test_anti_oracle_negative(self):
        score, t, y = single_outcome_rct()
        assert qini_coefficient(-score, t, y) < 0

    def test_curve_shapes(self):
        score, t, y = single_outcome_rct(n=2000)
        fractions, qini = qini_curve(score, t, y, n_points=50)
        assert fractions.shape == qini.shape
        assert fractions[-1] == pytest.approx(1.0)


class TestUpliftAtK:
    def test_top_fraction_has_higher_uplift(self):
        score, t, y = single_outcome_rct()
        top = uplift_at_k(score, t, y, k=0.2)
        bottom = uplift_at_k(-score, t, y, k=0.2)
        assert top > bottom

    def test_k_validation(self):
        score, t, y = single_outcome_rct(n=500)
        with pytest.raises(ValueError, match="k must be"):
            uplift_at_k(score, t, y, k=0.0)

    def test_full_population_equals_ate(self):
        score, t, y = single_outcome_rct(n=3000)
        full = uplift_at_k(score, t, y, k=1.0)
        ate = y[t == 1].mean() - y[t == 0].mean()
        assert full == pytest.approx(ate)


class TestIntervalStatistics:
    def test_basic(self):
        stats = interval_statistics(
            np.array([0.5, 0.9]), np.array([0.4, 0.4]), np.array([0.6, 0.6])
        )
        assert stats.coverage == 0.5
        assert stats.mean_width == pytest.approx(0.2)
        assert stats.median_width == pytest.approx(0.2)

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError, match="upper < lower"):
            interval_statistics(np.array([0.5]), np.array([1.0]), np.array([0.0]))

"""Integration tests wiring the whole system together.

These follow the paper's experimental protocol end-to-end at miniature
scale: build a setting, train DRP/rDRP and a TPM baseline, evaluate the
AUCC ordering, and solve C-BTAP with the greedy allocator.
"""

import numpy as np
import pytest

import repro

# trains DRP/rDRP and forest-based TPM baselines end-to-end; PR CI
# skips these (-m "not slow"), the main-branch job runs everything
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def criteo_suno():
    return repro.make_setting("criteo", "SuNo", n_sufficient=6000, random_state=0)


@pytest.fixture(scope="module")
def fitted_models(criteo_suno):
    data = criteo_suno
    rdrp = repro.RobustDRP(random_state=0, hidden=32, epochs=60, mc_samples=10)
    rdrp.fit(data.train.x, data.train.t, data.train.y_r, data.train.y_c)
    rdrp.calibrate(
        data.calibration.x,
        data.calibration.t,
        data.calibration.y_r,
        data.calibration.y_c,
    )
    return rdrp


class TestTableOneMiniature:
    def test_drp_beats_random_ranking(self, criteo_suno, fitted_models):
        data, rdrp = criteo_suno, fitted_models
        te = data.test
        rng = np.random.default_rng(0)
        drp_score = repro.aucc(rdrp.drp.predict_roi(te.x), te.t, te.y_r, te.y_c)
        random_score = np.mean(
            [repro.aucc(rng.random(te.n), te.t, te.y_r, te.y_c) for _ in range(5)]
        )
        assert drp_score > random_score

    def test_rdrp_at_least_as_good_as_drp_on_calibration(self, criteo_suno, fitted_models):
        """The form selector guarantees no regression on its own data."""
        data, rdrp = criteo_suno, fitted_models
        ca = data.calibration
        froi = rdrp.predict_roi(ca.x)
        roi_hat = rdrp.drp.predict_roi(ca.x)
        a_rdrp = repro.aucc(froi, ca.t, ca.y_r, ca.y_c)
        a_drp = repro.aucc(roi_hat, ca.t, ca.y_r, ca.y_c)
        # allow MC-draw wiggle: the guarantee is approximate across draws
        assert a_rdrp >= a_drp - 0.1

    def test_tpm_pipeline_end_to_end(self, criteo_suno):
        data = criteo_suno
        tr, te = data.train, data.test
        tpm = repro.make_tpm("SL", random_state=0, fast=True)
        tpm.fit(tr.x, tr.y_r, tr.y_c, tr.t)
        roi = tpm.predict_roi(te.x)
        assert np.all(np.isfinite(roi))
        score = repro.aucc(roi, te.t, te.y_r, te.y_c)
        assert 0.0 <= score <= 1.0


class TestAllocationIntegration:
    def test_rdrp_scores_feed_greedy_allocator(self, criteo_suno, fitted_models):
        data, rdrp = criteo_suno, fitted_models
        te = data.test
        froi = rdrp.predict_roi(te.x)
        budget = 0.3 * float(np.sum(te.tau_c))
        result = repro.greedy_allocation(froi, te.tau_c, budget, rewards=te.tau_r)
        assert result.total_cost <= budget + 1e-9
        assert 0 < result.n_selected < te.n

    def test_model_allocation_beats_random_allocation(self, criteo_suno, fitted_models):
        data, rdrp = criteo_suno, fitted_models
        te = data.test
        froi = rdrp.predict_roi(te.x)
        budget = 0.3 * float(np.sum(te.tau_c))
        rng = np.random.default_rng(0)
        model_alloc = repro.greedy_allocation(froi, te.tau_c, budget, rewards=te.tau_r)
        random_alloc = repro.greedy_allocation(
            rng.random(te.n), te.tau_c, budget, rewards=te.tau_r
        )
        assert model_alloc.total_reward > random_alloc.total_reward


class TestABIntegration:
    def test_three_arm_experiment(self, fitted_models):
        rdrp = fitted_models
        platform = repro.Platform(dataset="criteo", random_state=3)
        policies = {
            "DRP": rdrp.drp.predict_roi,
            "rDRP": rdrp.predict_roi,
        }
        ab = repro.ABTest(platform, policies, budget_fraction=0.3, random_state=0)
        result = ab.run(n_days=2, cohort_size=900)
        uplift = result.uplift_vs_random
        assert set(uplift) == {"DRP", "rDRP"}
        assert all(len(series) == 2 for series in uplift.values())


class TestConformalIntegration:
    def test_intervals_nontrivial(self, criteo_suno, fitted_models):
        data, rdrp = criteo_suno, fitted_models
        lower, upper = rdrp.predict_interval(data.test.x)
        width = upper - lower
        assert np.all(width >= 0)
        assert width.mean() > 0

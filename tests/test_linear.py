"""Tests for repro.linear (ridge + logistic regression)."""

import numpy as np
import pytest

from repro.linear import LogisticRegression, RidgeRegression


class TestRidge:
    def test_recovers_linear_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 3))
        w = np.array([1.5, -2.0, 0.5])
        y = x @ w + 3.0
        model = RidgeRegression(alpha=1e-8).fit(x, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-6)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-6)

    def test_alpha_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3))
        y = x @ np.array([2.0, 0.0, 0.0]) + rng.normal(size=100)
        small = RidgeRegression(alpha=1e-6).fit(x, y)
        large = RidgeRegression(alpha=1e4).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalised(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 2))
        y = np.full(200, 10.0) + 0.01 * rng.normal(size=200)
        model = RidgeRegression(alpha=1e6).fit(x, y)
        assert model.intercept_ == pytest.approx(10.0, abs=0.1)

    def test_no_intercept(self):
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = RidgeRegression(alpha=1e-10, fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0, abs=1e-6)

    def test_sample_weight(self):
        # two populations; weights select the first
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0.0, 0.0, 1.0, 5.0])
        w = np.array([1.0, 1.0, 1.0, 0.0])  # ignore the y=5 outlier
        model = RidgeRegression(alpha=1e-10).fit(x, y, sample_weight=w)
        pred = model.predict([[1.0]])
        assert pred[0] == pytest.approx(1.0, abs=1e-6)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="sample_weight"):
            RidgeRegression().fit([[1.0]], [1.0], sample_weight=[-1.0])

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RidgeRegression().predict([[1.0]])

    def test_feature_mismatch(self):
        model = RidgeRegression().fit(np.ones((10, 3)), np.ones(10))
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((2, 2)))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            RidgeRegression(alpha=-1.0)


class TestLogistic:
    def test_learns_separating_direction(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(800, 2))
        logits = 2.0 * x[:, 0] - 1.0 * x[:, 1]
        y = (rng.random(800) < 1 / (1 + np.exp(-logits))).astype(int)
        model = LogisticRegression(alpha=1e-4).fit(x, y)
        assert model.coef_[0] > 0.5
        assert model.coef_[1] < -0.2
        # coefficient ratio approximately recovered
        assert model.coef_[0] / -model.coef_[1] == pytest.approx(2.0, rel=0.5)

    def test_probabilities_calibrated_on_constant(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2000, 2)) * 0.01  # nearly uninformative
        y = (rng.random(2000) < 0.3).astype(int)
        model = LogisticRegression().fit(x, y)
        p = model.predict_proba(x)
        assert p.mean() == pytest.approx(0.3, abs=0.03)

    def test_predict_threshold(self):
        x = np.array([[-5.0], [5.0]])
        y = np.array([0, 1])
        model = LogisticRegression(alpha=1e-6).fit(
            np.vstack([x] * 20), np.tile(y, 20)
        )
        np.testing.assert_array_equal(model.predict(x), [0, 1])

    def test_separable_data_converges_with_penalty(self):
        x = np.vstack([np.full((20, 1), -1.0), np.full((20, 1), 1.0)])
        y = np.array([0] * 20 + [1] * 20)
        model = LogisticRegression(alpha=1.0, max_iter=200).fit(x, y)
        assert np.isfinite(model.coef_).all()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict_proba([[1.0]])

    def test_nonbinary_target_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit([[1.0], [2.0]], [1, 2])

    def test_feature_mismatch(self):
        model = LogisticRegression().fit(np.ones((20, 2)), [0, 1] * 10)
        with pytest.raises(ValueError, match="features"):
            model.predict_proba(np.ones((2, 3)))

    def test_n_iter_recorded(self):
        model = LogisticRegression().fit(np.random.default_rng(0).normal(size=(50, 2)), [0, 1] * 25)
        assert model.n_iter_ >= 1


class TestRidgePartialFit:
    """Warm-start sufficient statistics: batched == one-shot exactly."""

    def test_batches_match_single_fit(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=(300, 4)), rng.normal(size=300)
        cold = RidgeRegression(alpha=0.7).fit(x, y)
        warm = RidgeRegression(alpha=0.7)
        for lo in range(0, 300, 60):
            warm.partial_fit(x[lo:lo + 60], y[lo:lo + 60])
        np.testing.assert_allclose(warm.coef_, cold.coef_, atol=1e-10)
        assert warm.intercept_ == pytest.approx(cold.intercept_, abs=1e-10)

    def test_weighted_batches_match_weighted_fit(self):
        rng = np.random.default_rng(4)
        x, y = rng.normal(size=(120, 3)), rng.normal(size=120)
        w = rng.random(120) + 0.1
        cold = RidgeRegression(alpha=0.3).fit(x, y, sample_weight=w)
        warm = RidgeRegression(alpha=0.3)
        warm.partial_fit(x[:50], y[:50], sample_weight=w[:50])
        warm.partial_fit(x[50:], y[50:], sample_weight=w[50:])
        np.testing.assert_allclose(warm.coef_, cold.coef_, atol=1e-10)

    def test_no_intercept_path(self):
        rng = np.random.default_rng(5)
        x, y = rng.normal(size=(80, 2)), rng.normal(size=80)
        cold = RidgeRegression(alpha=0.5, fit_intercept=False).fit(x, y)
        warm = RidgeRegression(alpha=0.5, fit_intercept=False)
        warm.partial_fit(x[:40], y[:40]).partial_fit(x[40:], y[40:])
        np.testing.assert_allclose(warm.coef_, cold.coef_, atol=1e-10)
        assert warm.intercept_ == 0.0

    def test_full_fit_resets_accumulation(self):
        rng = np.random.default_rng(6)
        x, y = rng.normal(size=(100, 3)), rng.normal(size=100)
        model = RidgeRegression(alpha=1.0)
        model.partial_fit(x[:50], y[:50])
        model.fit(x, y)  # discards the accumulated half
        model.partial_fit(x[:50], y[:50])  # fresh accumulation
        alone = RidgeRegression(alpha=1.0).partial_fit(x[:50], y[:50])
        np.testing.assert_allclose(model.coef_, alone.coef_, atol=1e-12)

    def test_feature_mismatch_rejected(self):
        model = RidgeRegression().partial_fit(np.ones((10, 3)), np.ones(10))
        with pytest.raises(ValueError, match="features"):
            model.partial_fit(np.ones((5, 2)), np.ones(5))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="sample_weight"):
            RidgeRegression().partial_fit([[1.0]], [1.0], sample_weight=[-1.0])


class TestLogisticSampleWeight:
    """sample_weight matches RidgeRegression.fit: weight w == w replicas."""

    def test_weighted_equals_replicated_rows(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(60, 3))
        y = (x[:, 0] + 0.3 * rng.normal(size=60) > 0).astype(int)
        counts = rng.integers(1, 4, size=60)
        x_rep = np.repeat(x, counts, axis=0)
        y_rep = np.repeat(y, counts)
        replicated = LogisticRegression(alpha=0.1).fit(x_rep, y_rep)
        weighted = LogisticRegression(alpha=0.1).fit(
            x, y, sample_weight=counts.astype(float)
        )
        np.testing.assert_allclose(weighted.coef_, replicated.coef_, atol=1e-6)
        assert weighted.intercept_ == pytest.approx(replicated.intercept_, abs=1e-6)

    def test_zero_weight_rows_ignored(self):
        x = np.array([[0.0], [0.0], [5.0], [5.0], [9.0]])
        y = np.array([0, 0, 1, 1, 0])  # the y=0 outlier at x=9 ...
        w = np.array([1.0, 1.0, 1.0, 1.0, 0.0])  # ... carries no weight
        clean = LogisticRegression(alpha=0.1).fit(x[:4], y[:4])
        weighted = LogisticRegression(alpha=0.1).fit(x, y, sample_weight=w)
        np.testing.assert_allclose(weighted.coef_, clean.coef_, atol=1e-8)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ValueError, match="sample_weight"):
            LogisticRegression().fit([[1.0], [2.0]], [0, 1], sample_weight=[-1.0, 1.0])
        with pytest.raises(ValueError, match="sample_weight"):
            LogisticRegression().fit([[1.0], [2.0]], [0, 1], sample_weight=[0.0, 0.0])

    def test_warm_start_converges_faster_same_solution(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(400, 4))
        beta = np.array([1.0, -0.5, 0.25, 0.0])
        y = (rng.random(400) < 1.0 / (1.0 + np.exp(-(x @ beta)))).astype(int)
        cold = LogisticRegression(alpha=0.01).fit(x, y)
        warm = LogisticRegression(alpha=0.01, warm_start=True).fit(x, y)
        cold_iters = cold.n_iter_
        # refit on a small perturbation of the same problem
        x2, y2 = x[: 380], y[: 380]
        warm.fit(x2, y2)
        cold2 = LogisticRegression(alpha=0.01).fit(x2, y2)
        assert warm.n_iter_ < cold_iters
        np.testing.assert_allclose(warm.coef_, cold2.coef_, atol=1e-6)

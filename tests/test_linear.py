"""Tests for repro.linear (ridge + logistic regression)."""

import numpy as np
import pytest

from repro.linear import LogisticRegression, RidgeRegression


class TestRidge:
    def test_recovers_linear_coefficients(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(500, 3))
        w = np.array([1.5, -2.0, 0.5])
        y = x @ w + 3.0
        model = RidgeRegression(alpha=1e-8).fit(x, y)
        np.testing.assert_allclose(model.coef_, w, atol=1e-6)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-6)

    def test_alpha_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 3))
        y = x @ np.array([2.0, 0.0, 0.0]) + rng.normal(size=100)
        small = RidgeRegression(alpha=1e-6).fit(x, y)
        large = RidgeRegression(alpha=1e4).fit(x, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_intercept_not_penalised(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 2))
        y = np.full(200, 10.0) + 0.01 * rng.normal(size=200)
        model = RidgeRegression(alpha=1e6).fit(x, y)
        assert model.intercept_ == pytest.approx(10.0, abs=0.1)

    def test_no_intercept(self):
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = RidgeRegression(alpha=1e-10, fit_intercept=False).fit(x, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0, abs=1e-6)

    def test_sample_weight(self):
        # two populations; weights select the first
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0.0, 0.0, 1.0, 5.0])
        w = np.array([1.0, 1.0, 1.0, 0.0])  # ignore the y=5 outlier
        model = RidgeRegression(alpha=1e-10).fit(x, y, sample_weight=w)
        pred = model.predict([[1.0]])
        assert pred[0] == pytest.approx(1.0, abs=1e-6)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="sample_weight"):
            RidgeRegression().fit([[1.0]], [1.0], sample_weight=[-1.0])

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RidgeRegression().predict([[1.0]])

    def test_feature_mismatch(self):
        model = RidgeRegression().fit(np.ones((10, 3)), np.ones(10))
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((2, 2)))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            RidgeRegression(alpha=-1.0)


class TestLogistic:
    def test_learns_separating_direction(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(800, 2))
        logits = 2.0 * x[:, 0] - 1.0 * x[:, 1]
        y = (rng.random(800) < 1 / (1 + np.exp(-logits))).astype(int)
        model = LogisticRegression(alpha=1e-4).fit(x, y)
        assert model.coef_[0] > 0.5
        assert model.coef_[1] < -0.2
        # coefficient ratio approximately recovered
        assert model.coef_[0] / -model.coef_[1] == pytest.approx(2.0, rel=0.5)

    def test_probabilities_calibrated_on_constant(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2000, 2)) * 0.01  # nearly uninformative
        y = (rng.random(2000) < 0.3).astype(int)
        model = LogisticRegression().fit(x, y)
        p = model.predict_proba(x)
        assert p.mean() == pytest.approx(0.3, abs=0.03)

    def test_predict_threshold(self):
        x = np.array([[-5.0], [5.0]])
        y = np.array([0, 1])
        model = LogisticRegression(alpha=1e-6).fit(
            np.vstack([x] * 20), np.tile(y, 20)
        )
        np.testing.assert_array_equal(model.predict(x), [0, 1])

    def test_separable_data_converges_with_penalty(self):
        x = np.vstack([np.full((20, 1), -1.0), np.full((20, 1), 1.0)])
        y = np.array([0] * 20 + [1] * 20)
        model = LogisticRegression(alpha=1.0, max_iter=200).fit(x, y)
        assert np.isfinite(model.coef_).all()

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            LogisticRegression().predict_proba([[1.0]])

    def test_nonbinary_target_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit([[1.0], [2.0]], [1, 2])

    def test_feature_mismatch(self):
        model = LogisticRegression().fit(np.ones((20, 2)), [0, 1] * 10)
        with pytest.raises(ValueError, match="features"):
            model.predict_proba(np.ones((2, 3)))

    def test_n_iter_recorded(self):
        model = LogisticRegression().fit(np.random.default_rng(0).normal(size=(50, 2)), [0, 1] * 25)
        assert model.n_iter_ >= 1

"""Tests for cross-policy cohort replay with common random numbers."""

import numpy as np
import pytest

from repro.ab.experiment import RANDOM_ARM, ABTest, plan_day
from repro.ab.platform import Platform
from repro.ab.replay import PolicyReplay
from repro.data import criteo_uplift_v2


@pytest.fixture
def platform():
    return Platform(dataset="criteo", random_state=0)


def _roi_weights():
    """A 'semi-oracle' scoring direction correlated with the true ROI."""
    probe = criteo_uplift_v2(4000, random_state=5)
    return np.linalg.lstsq(probe.x, probe.roi, rcond=None)[0]


def _constant_policy(x):
    return np.ones(x.shape[0])


class TestPlanDay:
    """The split helper shared by ABTest.run_day and PolicyReplay."""

    def test_remainder_spread_over_leading_arms(self, platform):
        cohort = platform.daily_cohort(100, day=1)  # 100 % 3 == 1
        policies = {"a": _constant_policy, "b": _constant_policy}
        arms, orders, budgets, sizes = plan_day(
            cohort, policies, 0.3, np.random.default_rng(0)
        )
        assert arms == ["a", "b", RANDOM_ARM]
        assert sizes == [34, 33, 33]
        assert sum(sizes) == 100
        covered = np.sort(np.concatenate(orders))
        np.testing.assert_array_equal(covered, np.arange(100))

    def test_same_rng_same_plan(self, platform):
        cohort = platform.daily_cohort(90, day=1)
        policies = {"a": _constant_policy}
        plan1 = plan_day(cohort, policies, 0.3, np.random.default_rng(7))
        plan2 = plan_day(cohort, policies, 0.3, np.random.default_rng(7))
        for o1, o2 in zip(plan1[1], plan2[1]):
            np.testing.assert_array_equal(o1, o2)
        assert plan1[2] == plan2[2]

    def test_abtest_run_day_uses_shared_helper(self, platform, monkeypatch):
        """run_day must not re-implement the split inline."""
        from repro.ab import experiment as experiment_module

        calls = []
        real = experiment_module.plan_day

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(experiment_module, "plan_day", spy)
        test = ABTest(platform, {"a": _constant_policy}, random_state=0)
        test.run_day(platform.daily_cohort(120, day=1), day=1)
        assert calls

    def test_wrong_score_length_rejected(self, platform):
        cohort = platform.daily_cohort(90, day=1)
        with pytest.raises(ValueError, match="scores"):
            plan_day(cohort, {"bad": lambda x: np.ones(3)}, 0.3, np.random.default_rng(0))


class TestPolicyReplayValidation:
    def test_empty_sets_rejected(self, platform):
        with pytest.raises(ValueError, match="At least one"):
            PolicyReplay(platform, {})

    def test_empty_set_rejected(self, platform):
        with pytest.raises(ValueError, match="empty"):
            PolicyReplay(platform, {"s": {}})

    def test_reserved_arm_rejected(self, platform):
        with pytest.raises(ValueError, match="reserved"):
            PolicyReplay(platform, {"s": {RANDOM_ARM: _constant_policy}})

    def test_invalid_budget_fraction(self, platform):
        with pytest.raises(ValueError, match="budget_fraction"):
            PolicyReplay(platform, {"s": {"m": _constant_policy}}, budget_fraction=1.5)

    def test_cohort_too_small_for_widest_set(self, platform):
        replay = PolicyReplay(
            platform,
            {"narrow": {"m": _constant_policy},
             "wide": {f"m{i}": _constant_policy for i in range(5)}},
        )
        with pytest.raises(ValueError, match="too small"):
            replay.run(n_days=1, cohort_size=50)

    def test_invalid_n_days(self, platform):
        replay = PolicyReplay(platform, {"s": {"m": _constant_policy}})
        with pytest.raises(ValueError, match="n_days"):
            replay.run(n_days=0, cohort_size=600)


class TestPolicyReplayCRN:
    def test_structure(self, platform):
        w = _roi_weights()
        replay = PolicyReplay(
            platform,
            {"good": {"m": lambda x: x @ w}, "weak": {"m": _constant_policy}},
            random_state=0,
        )
        result = replay.run(n_days=2, cohort_size=300)
        assert result.set_names == ["good", "weak"]
        for res in result.results.values():
            assert len(res.days) == 2
            assert set(res.days[0].revenue) == {"m", RANDOM_ARM}
        assert len(result.uplift_delta("good", "weak", "m")) == 2

    def test_identical_sets_identical_results(self, platform):
        """The CRN exactness limit: two copies of the same policy see
        the same cohort, partition, and outcome draws — every realised
        number must match bit-for-bit."""
        w = _roi_weights()
        replay = PolicyReplay(
            platform,
            {"left": {"m": lambda x: x @ w}, "right": {"m": lambda x: x @ w}},
            random_state=3,
        )
        result = replay.run(n_days=3, cohort_size=400)
        for day_l, day_r in zip(result.results["left"].days, result.results["right"].days):
            assert day_l == day_r
        assert result.uplift_delta("left", "right", "m") == [0.0, 0.0, 0.0]

    def test_random_control_identical_across_sets(self, platform):
        """All sets share one control realisation — the pairing anchor."""
        w = _roi_weights()
        result = PolicyReplay(
            platform,
            {"good": {"m": lambda x: x @ w}, "anti": {"m": lambda x: -(x @ w)}},
            random_state=1,
        ).run(n_days=2, cohort_size=400)
        for day_g, day_a in zip(result.results["good"].days, result.results["anti"].days):
            assert day_g.revenue[RANDOM_ARM] == day_a.revenue[RANDOM_ARM]
            assert day_g.spend[RANDOM_ARM] == day_a.spend[RANDOM_ARM]
            assert day_g.n_treated[RANDOM_ARM] == day_a.n_treated[RANDOM_ARM]

    def test_replay_day_on_fixed_cohort(self, platform):
        cohort = platform.daily_cohort(300, day=1)
        replay = PolicyReplay(
            platform,
            {"a": {"m": _constant_policy}, "b": {"m": lambda x: x[:, 0]}},
            random_state=0,
        )
        result = replay.replay_day(cohort, day=7)
        for res in result.results.values():
            assert len(res.days) == 1
            assert res.days[0].day == 7
        assert sum(result.results["a"].days[0].n_users.values()) == 300

    def test_three_policy_sets_one_cohort(self):
        """The docstring example shape: three policies, one cohort."""
        w = _roi_weights()
        generated_days = []
        platform = Platform(dataset="criteo", random_state=0)
        real = platform.daily_cohort
        platform.daily_cohort = lambda n, day, **kw: (generated_days.append(day), real(n, day, **kw))[1]
        result = PolicyReplay(
            platform,
            {
                "oracle-ish": {"m": lambda x: x @ w},
                "anti": {"m": lambda x: -(x @ w)},
                "constant": {"m": _constant_policy},
            },
            random_state=0,
        ).run(n_days=2, cohort_size=600)
        # one generation per day serves all three sets
        assert generated_days == [1, 2]
        mean = result.mean_uplift()
        assert set(mean) == {"oracle-ish", "anti", "constant"}
        # paired on identical users/draws, the good direction must beat
        # its own negation
        assert np.mean(result.uplift_delta("oracle-ish", "anti", "m")) > 0


class TestDeltaCI:
    """Paired significance on CRN deltas (the ROADMAP open item)."""

    def test_identical_sets_give_a_degenerate_interval_at_zero(self, platform):
        w = _roi_weights()
        result = PolicyReplay(
            platform,
            {"left": {"m": lambda x: x @ w}, "right": {"m": lambda x: x @ w}},
            random_state=3,
        ).run(n_days=3, cohort_size=400)
        ci = result.delta_ci("left", "right", "m")
        assert (ci.lo, ci.mean, ci.hi) == (0.0, 0.0, 0.0)
        assert ci.n == 3

    def test_pinned_interval_matches_manual_t_formula(self):
        """delta_ci must be exactly the paired t-interval on the
        uplift_delta series — pinned against the hand formula."""
        from repro.utils.stats import t_ppf

        w = _roi_weights()
        result = PolicyReplay(
            Platform(dataset="criteo", random_state=0),
            {"good": {"m": lambda x: x @ w}, "weak": {"m": _constant_policy}},
            budget_fraction=0.4,
            random_state=11,
        ).run(n_days=5, cohort_size=600)
        deltas = np.asarray(result.uplift_delta("good", "weak", "m"))
        ci = result.delta_ci("good", "weak", "m", level=0.95)
        half = t_ppf(0.975, 4) * deltas.std(ddof=1) / np.sqrt(5)
        assert ci.mean == pytest.approx(float(deltas.mean()), rel=1e-12)
        assert ci.half_width == pytest.approx(float(half), rel=1e-9)
        assert ci.lo == pytest.approx(ci.mean - ci.half_width)
        assert ci.hi == pytest.approx(ci.mean + ci.half_width)
        assert ci.level == 0.95 and ci.n == 5

    def test_good_policy_beats_its_negation_significantly(self):
        """On paired draws the oracle-direction-vs-anti delta is so
        large and stable that the 95% CI must exclude zero."""
        w = _roi_weights()
        result = PolicyReplay(
            Platform(dataset="criteo", random_state=1),
            {"good": {"m": lambda x: x @ w}, "anti": {"m": lambda x: -(x @ w)}},
            random_state=1,
        ).run(n_days=4, cohort_size=800)
        ci = result.delta_ci("good", "anti", "m")
        assert ci.mean > 0
        assert ci.excludes_zero()

    def test_needs_at_least_two_days(self, platform):
        result = PolicyReplay(
            platform,
            {"a": {"m": _constant_policy}, "b": {"m": _constant_policy}},
            random_state=0,
        ).run(n_days=1, cohort_size=400)
        with pytest.raises(ValueError, match=">= 2"):
            result.delta_ci("a", "b", "m")


class TestCRNVarianceReduction:
    def test_paired_deltas_less_variable_than_independent(self):
        """The satellite acceptance test: the greedy-vs-weak uplift
        delta, replayed paired (one cohort, one outcome tensor), has
        strictly lower variance across seeds than the same delta from
        independent cohorts — comfortably below half, in fact."""
        w = _roi_weights()
        good = {"m": lambda x: x @ w}
        weak = {"m": _constant_policy}
        budget_fraction = 0.5
        n_days, cohort = 3, 800

        paired, independent = [], []
        for s in range(8):
            base = 10_000 + 7 * s
            replay = PolicyReplay(
                Platform(dataset="criteo", random_state=base),
                {"good": good, "weak": weak},
                budget_fraction=budget_fraction,
                random_state=base + 1,
            ).run(n_days=n_days, cohort_size=cohort)
            paired.extend(replay.uplift_delta("good", "weak", "m"))

            run_a = ABTest(
                Platform(dataset="criteo", random_state=base + 2),
                good, budget_fraction=budget_fraction, random_state=base + 3,
            ).run(n_days=n_days, cohort_size=cohort)
            run_b = ABTest(
                Platform(dataset="criteo", random_state=base + 4),
                weak, budget_fraction=budget_fraction, random_state=base + 5,
            ).run(n_days=n_days, cohort_size=cohort)
            independent.extend(
                a - b
                for a, b in zip(run_a.uplift_vs_random["m"], run_b.uplift_vs_random["m"])
            )

        var_paired = float(np.var(paired, ddof=1))
        var_independent = float(np.var(independent, ddof=1))
        assert var_paired < var_independent  # the ISSUE's strict bound
        assert var_paired < 0.5 * var_independent  # and with real margin

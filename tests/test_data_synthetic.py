"""Tests for the structural RCT generator and its paper assumptions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import SyntheticRCTConfig, generate_rct


def make(n=4000, seed=0, config=None, **kwargs):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 6))
    cfg = config or SyntheticRCTConfig()
    return generate_rct(n, x, cfg, random_state=rng, **kwargs)


class TestAssumptions:
    def test_roi_in_open_unit_interval(self):
        """Assumption 3: ROI constrained to (0, 1)."""
        data = make()
        assert np.all(data.roi > 0)
        assert np.all(data.roi < 1)

    def test_positive_effects(self):
        """Assumption 4: tau_r > 0 and tau_c > 0."""
        data = make()
        assert np.all(data.tau_r > 0)
        assert np.all(data.tau_c > 0)

    def test_roi_definition(self):
        """Definition 2: roi = tau_r / tau_c."""
        data = make()
        np.testing.assert_allclose(data.roi, data.tau_r / data.tau_c, rtol=1e-9)

    def test_rct_assignment_independent_of_features(self):
        """Assumption 1: treated and control feature means agree."""
        data = make(n=20000)
        mean_treated = data.x[data.t == 1].mean(axis=0)
        mean_control = data.x[data.t == 0].mean(axis=0)
        np.testing.assert_allclose(mean_treated, mean_control, atol=0.06)

    def test_realised_effects_match_structural(self):
        """Difference-in-means on a big sample recovers mean tau."""
        data = make(n=60000)
        est_tau_c = data.y_c[data.t == 1].mean() - data.y_c[data.t == 0].mean()
        est_tau_r = data.y_r[data.t == 1].mean() - data.y_r[data.t == 0].mean()
        assert est_tau_c == pytest.approx(data.tau_c.mean(), abs=0.02)
        assert est_tau_r == pytest.approx(data.tau_r.mean(), abs=0.02)

    def test_binary_outcomes(self):
        data = make()
        assert set(np.unique(data.y_r)) <= {0.0, 1.0}
        assert set(np.unique(data.y_c)) <= {0.0, 1.0}

    @given(st.floats(min_value=0.2, max_value=0.8))
    @settings(max_examples=10, deadline=None)
    def test_p_treat_respected(self, p):
        cfg = SyntheticRCTConfig(p_treat=p)
        data = make(n=8000, config=cfg)
        assert data.t.mean() == pytest.approx(p, abs=0.05)


class TestConfigValidation:
    def test_bad_roi_range(self):
        with pytest.raises(ValueError, match="roi_low"):
            SyntheticRCTConfig(roi_low=0.9, roi_high=0.1).validate()

    def test_bad_cost_range(self):
        with pytest.raises(ValueError, match="cost_low"):
            SyntheticRCTConfig(cost_low=0.5, cost_high=0.1).validate()

    def test_bad_p_treat(self):
        with pytest.raises(ValueError, match="p_treat"):
            SyntheticRCTConfig(p_treat=1.0).validate()

    def test_bad_base_rates(self):
        with pytest.raises(ValueError, match="Base rates"):
            SyntheticRCTConfig(base_cost_rate=0.0).validate()


class TestCustomAssignment:
    def test_custom_t_used(self):
        rng = np.random.default_rng(0)
        n = 500
        x = rng.normal(size=(n, 4))
        t = np.array([1, 0] * (n // 2))
        data = generate_rct(n, x, SyntheticRCTConfig(), random_state=0, t=t)
        np.testing.assert_array_equal(data.t, t)

    def test_custom_t_wrong_length(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="length"):
            generate_rct(10, x, SyntheticRCTConfig(), t=np.ones(5, dtype=int))

    def test_custom_t_nonbinary(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 2))
        with pytest.raises(ValueError, match="binary"):
            generate_rct(10, x, SyntheticRCTConfig(), t=np.full(10, 2))


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = make(seed=5)
        b = make(seed=5)
        np.testing.assert_array_equal(a.y_r, b.y_r)
        np.testing.assert_array_equal(a.t, b.t)

    def test_structural_weights_stable_across_calls(self):
        """Same name -> same ground-truth function (process-stable)."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 6))
        a = generate_rct(100, x, SyntheticRCTConfig(), random_state=1, name="stable")
        b = generate_rct(100, x, SyntheticRCTConfig(), random_state=2, name="stable")
        np.testing.assert_allclose(a.roi, b.roi)

    def test_different_names_different_truth(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 6))
        a = generate_rct(100, x, SyntheticRCTConfig(), random_state=1, name="alpha")
        b = generate_rct(100, x, SyntheticRCTConfig(), random_state=1, name="beta")
        assert not np.allclose(a.roi, b.roi)

    def test_row_count_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            generate_rct(5, np.ones((4, 2)), SyntheticRCTConfig())

"""Tests for the AUCC metric (the paper's evaluation metric)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import criteo_uplift_v2
from repro.metrics.aucc import aucc, cost_curve


@pytest.fixture(scope="module")
def big_rct():
    return criteo_uplift_v2(30000, random_state=0)


class TestCostCurve:
    def test_endpoints(self, big_rct):
        d = big_rct
        curve = cost_curve(d.roi, d.t, d.y_r, d.y_c)
        assert curve.cost[0] == 0.0
        assert curve.reward[0] == 0.0
        assert curve.cost[-1] == pytest.approx(1.0)
        assert curve.reward[-1] == pytest.approx(1.0)

    def test_axes_in_unit_square(self, big_rct):
        d = big_rct
        rng = np.random.default_rng(0)
        curve = cost_curve(rng.random(d.n), d.t, d.y_r, d.y_c)
        assert np.all((curve.cost >= 0) & (curve.cost <= 1))
        assert np.all((curve.reward >= 0) & (curve.reward <= 1))

    def test_x_monotone(self, big_rct):
        d = big_rct
        curve = cost_curve(d.roi, d.t, d.y_r, d.y_c)
        assert np.all(np.diff(curve.cost) >= 0)

    def test_n_points_validation(self, big_rct):
        d = big_rct
        with pytest.raises(ValueError, match="n_points"):
            cost_curve(d.roi, d.t, d.y_r, d.y_c, n_points=1)

    def test_single_arm_rejected(self):
        with pytest.raises(ValueError, match="treated and control"):
            cost_curve(np.ones(10), np.ones(10, dtype=int), np.ones(10), np.ones(10))


class TestAucc:
    def test_oracle_beats_random(self, big_rct):
        d = big_rct
        rng = np.random.default_rng(1)
        oracle = aucc(d.roi, d.t, d.y_r, d.y_c)
        random_scores = [aucc(rng.random(d.n), d.t, d.y_r, d.y_c) for _ in range(5)]
        assert oracle > np.mean(random_scores) + 0.05

    def test_random_near_half(self, big_rct):
        d = big_rct
        rng = np.random.default_rng(2)
        scores = [aucc(rng.random(d.n), d.t, d.y_r, d.y_c) for _ in range(8)]
        assert np.mean(scores) == pytest.approx(0.5, abs=0.07)

    def test_anti_oracle_below_random(self, big_rct):
        d = big_rct
        anti = aucc(-d.roi, d.t, d.y_r, d.y_c)
        oracle = aucc(d.roi, d.t, d.y_r, d.y_c)
        assert anti < oracle - 0.1

    def test_only_ordering_matters(self, big_rct):
        d = big_rct
        base = aucc(d.roi, d.t, d.y_r, d.y_c)
        # any strictly monotone transform preserves the ranking
        transformed = aucc(np.exp(3.0 * d.roi), d.t, d.y_r, d.y_c)
        assert transformed == pytest.approx(base, abs=1e-12)

    def test_bounded_in_unit_interval(self, big_rct):
        d = big_rct
        rng = np.random.default_rng(3)
        for _ in range(5):
            score = aucc(rng.random(d.n), d.t, d.y_r, d.y_c)
            assert 0.0 <= score <= 1.0

    def test_degenerate_no_effect_population(self):
        """Zero average effect: flat normalisation -> neutral 0.5."""
        rng = np.random.default_rng(4)
        n = 4000
        t = rng.integers(0, 2, size=n)
        y = (rng.random(n) < 0.3).astype(float)  # outcome independent of t
        score = aucc(rng.random(n), t, y, y.copy())
        assert score == pytest.approx(0.5, abs=0.25)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_never_nan(self, seed):
        rng = np.random.default_rng(seed)
        n = 400
        t = rng.integers(0, 2, size=n)
        t[0] = 1
        t[1] = 0
        y_r = (rng.random(n) < 0.3).astype(float)
        y_c = (rng.random(n) < 0.5).astype(float)
        score = aucc(rng.random(n), t, y_r, y_c)
        assert np.isfinite(score)

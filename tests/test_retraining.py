"""Streaming retraining: the Retrainer lifecycle and the closed-loop E2E pin.

The E2E test at the bottom is the PR's acceptance criterion: under
injected concept drift a retraining campaign — outcomes drained into a
rolling window, refits auto-staged as challengers, the ordinary
AutoPromoter gate ramping and promoting them — must strictly beat a
frozen champion on CRN-paired cumulative incremental revenue, with at
least one auto-staged challenger promoted and zero manual
``registry.register`` calls after day one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal.base import TrainableModel
from repro.linear import RidgeRegression
from repro.runtime import ManualClock, SerialBackend, ThreadBackend
from repro.serving import ModelRegistry, Retrainer
from repro.serving.retraining import RetrainEvent

DAY_S = 86_400.0


class TreatedNetRidge(TrainableModel):
    """Minimal serving-ready TrainableModel: ridge on treated rows' net.

    Module-level so backend futures (and the registry snapshot path)
    can pickle it.
    """

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self._ridge = None

    def fit(self, x, y, t):
        t = np.asarray(t)
        mask = t == 1
        if mask.sum() < 2:
            raise ValueError("need >= 2 treated rows to fit")
        self._ridge = RidgeRegression(alpha=self.alpha).fit(
            np.asarray(x)[mask], np.asarray(y)[mask]
        )
        return self

    def predict_roi(self, x):
        return self._ridge.predict(x)


def _registry_with_champion(seed: int = 0, d: int = 4) -> ModelRegistry:
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(80, d))
    t = rng.integers(0, 2, 80)
    y = x[:, 0] + 0.1 * rng.normal(size=80)
    registry = ModelRegistry(random_state=seed)
    registry.register(TreatedNetRidge().fit(x, y, t), name="champ", promote=True)
    return registry


def _feed(retrainer: Retrainer, n: int, seed: int = 0, shift: float = 0.0) -> None:
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = rng.normal(size=4) + shift
        treated = bool(rng.random() < 0.5)
        retrainer.observe(x, treated, float(x[0] + rng.normal() * 0.1), 0.1)


class TestRetrainerConstruction:
    def test_requires_a_trigger(self):
        with pytest.raises(ValueError, match="no trigger"):
            Retrainer(_registry_with_champion())

    def test_rejects_non_trainable_template(self):
        with pytest.raises(TypeError, match="TrainableModel"):
            Retrainer(
                _registry_with_champion(),
                template=object(),
                every_outcomes=10,
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 1},
            {"min_outcomes": 1},
            {"min_outcomes": 600, "window": 500},
            {"every_n_days": 0.0},
            {"every_outcomes": 0},
            {"drift_threshold": 0.0},
        ],
    )
    def test_parameter_validation(self, kwargs):
        base = {"every_outcomes": 10}
        base.update(kwargs)
        with pytest.raises(ValueError):
            Retrainer(_registry_with_champion(), **base)

    def test_champion_fallback_requires_trainable(self):
        registry = ModelRegistry(random_state=0)

        class Opaque:
            def predict_roi(self, x):
                return np.zeros(np.atleast_2d(x).shape[0])

        registry.register(Opaque(), promote=True)
        retrainer = Retrainer(registry, every_outcomes=10, min_outcomes=4, window=16)
        with pytest.raises(TypeError, match="template"):
            _feed(retrainer, 16)


class TestRetrainerTriggers:
    def test_window_rolls_and_counts(self):
        retrainer = Retrainer(
            _registry_with_champion(),
            every_outcomes=10_000,
            window=32,
            min_outcomes=8,
        )
        _feed(retrainer, 50)
        assert retrainer.n_buffered == 32  # oldest dropped out
        assert retrainer.n_observed == 50

    def test_every_outcomes_trigger_stages_challenger(self):
        registry = _registry_with_champion()
        retrainer = Retrainer(
            registry, every_outcomes=40, window=64, min_outcomes=16
        )
        _feed(retrainer, 40)
        assert retrainer.n_refits == 1
        assert retrainer.n_staged == 1
        assert registry.challenger is not None
        assert registry.challenger.name == "retrained-1"
        kinds = [e.kind for e in retrainer.events]
        assert kinds[:3] == ["trigger", "fit", "stage"]

    def test_trigger_declines_below_min_outcomes(self):
        retrainer = Retrainer(
            _registry_with_champion(), every_outcomes=10, window=64, min_outcomes=50
        )
        _feed(retrainer, 40)  # four count-triggers fire, all decline
        assert retrainer.n_refits == 0
        assert retrainer.events == []
        assert retrainer.refit_now() is False

    def test_every_n_days_fires_on_manual_clock(self):
        clock = ManualClock()
        retrainer = Retrainer(
            _registry_with_champion(),
            clock=clock,
            every_n_days=1.0,
            window=64,
            min_outcomes=8,
        )
        assert retrainer.next_deadline() == pytest.approx(DAY_S)
        _feed(retrainer, 20)
        assert retrainer.n_refits == 0  # deadline not reached yet
        clock.advance(DAY_S + 1.0)
        retrainer.poll()
        assert retrainer.n_refits == 1
        # the timer re-armed, one interval out from the fire time
        assert retrainer.next_deadline() == pytest.approx(2 * DAY_S + 1.0)

    def test_periodic_rearms_after_declined_trigger(self):
        clock = ManualClock()
        retrainer = Retrainer(
            _registry_with_champion(),
            clock=clock,
            every_n_days=1.0,
            window=64,
            min_outcomes=60,
        )
        clock.advance(DAY_S + 1.0)
        retrainer.poll()  # fires, declines: window empty
        assert retrainer.n_refits == 0
        assert retrainer.next_deadline() is not None  # policy not silenced

    def test_drift_trigger(self):
        registry = _registry_with_champion()
        retrainer = Retrainer(
            registry,
            drift_threshold=0.5,
            window=128,
            min_outcomes=64,
        )
        _feed(retrainer, 128, seed=1)
        assert retrainer.n_refits == 0
        assert retrainer.drift_score() < 0.5  # stationary stream
        _feed(retrainer, 256, seed=2, shift=2.0)  # mean shift >> threshold
        assert retrainer.n_refits >= 1
        assert any(e.reason == "drift" for e in retrainer.events)

    def test_drift_reference_refreezes_at_refit(self):
        retrainer = Retrainer(
            _registry_with_champion(),
            drift_threshold=0.5,
            window=128,
            min_outcomes=64,
        )
        _feed(retrainer, 128, seed=1)
        _feed(retrainer, 256, seed=2, shift=2.0)
        first_refits = retrainer.n_refits
        assert first_refits >= 1
        # keep streaming from the *shifted* regime: the reference was
        # re-frozen on the shifted window, so the score settles again
        _feed(retrainer, 256, seed=3, shift=2.0)
        assert retrainer.drift_score() < 0.5


class TestHoldAndStage:
    def test_holds_while_challenger_slot_occupied(self):
        registry = _registry_with_champion()
        retrainer = Retrainer(
            registry, every_outcomes=40, window=64, min_outcomes=16
        )
        _feed(retrainer, 40, seed=0)
        assert registry.challenger is not None  # slot now occupied
        _feed(retrainer, 40, seed=1)
        assert retrainer.n_refits == 2
        assert retrainer.n_staged == 1  # second refit held, not staged
        assert retrainer.refit_pending
        assert any(e.kind == "hold" for e in retrainer.events)
        registry.demote()
        retrainer.poll()
        assert retrainer.n_staged == 2
        assert registry.challenger.name == "retrained-2"
        assert not retrainer.refit_pending

    def test_freshest_held_fit_wins(self):
        registry = _registry_with_champion()
        retrainer = Retrainer(
            registry, every_outcomes=40, window=64, min_outcomes=16
        )
        _feed(retrainer, 40, seed=0)  # staged -> slot occupied
        _feed(retrainer, 40, seed=1)  # held
        held_first = retrainer._held
        # a manual refit while one is held: only the freshest survives
        assert retrainer.refit_now() is False  # refit_pending blocks it
        registry.demote()
        retrainer.poll()
        assert registry.challenger.model is held_first

    def test_refit_now_and_events_audit(self):
        registry = _registry_with_champion()
        clock = ManualClock()
        clock.advance(123.0)
        retrainer = Retrainer(
            registry, clock=clock, every_outcomes=10_000, window=64, min_outcomes=16
        )
        _feed(retrainer, 32)
        assert retrainer.refit_now("because") is True
        event = retrainer.events[0]
        assert isinstance(event, RetrainEvent)
        assert event.at == pytest.approx(123.0)
        assert event.reason == "because"
        stage = [e for e in retrainer.events if e.kind == "stage"][0]
        assert stage.version == registry.challenger.version


class TestBackendFits:
    @pytest.mark.parametrize("backend_cls", [SerialBackend, ThreadBackend])
    def test_fit_collected_via_poll(self, backend_cls):
        registry = _registry_with_champion()
        backend = backend_cls() if backend_cls is SerialBackend else backend_cls(2)
        try:
            retrainer = Retrainer(
                registry,
                every_outcomes=40,
                window=64,
                min_outcomes=16,
                backend=backend,
            )
            import time

            _feed(retrainer, 40)
            for _ in range(400):
                retrainer.poll()
                if retrainer.n_staged:
                    break
                time.sleep(0.005)
            assert retrainer.n_staged == 1
            assert registry.challenger is not None
        finally:
            if hasattr(backend, "shutdown"):
                backend.shutdown()

    def test_metrics_wiring(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        retrainer = Retrainer(
            _registry_with_champion(),
            every_outcomes=40,
            window=64,
            min_outcomes=16,
            metrics=metrics,
        )
        _feed(retrainer, 40)
        assert metrics.counter("retrainer.outcomes").value == 40
        assert metrics.counter("retrainer.refits").value == 1
        assert metrics.counter("retrainer.staged").value == 1
        assert metrics.gauge("retrainer.window_fill").value == 40


class TestSimulatorWiring:
    def _engine(self, seed=0):
        from repro.serving import ScoringEngine

        registry = _registry_with_champion(seed, d=12)  # criteo has 12 features
        clock = ManualClock()
        engine = ScoringEngine(registry, batch_size=8, clock=clock)
        return registry, clock, engine

    def test_rejects_foreign_registry(self):
        from repro.ab.platform import Platform
        from repro.serving import TrafficReplay

        registry, clock, engine = self._engine()
        other = _registry_with_champion(1)
        retrainer = Retrainer(other, every_outcomes=10, clock=clock)
        with pytest.raises(ValueError, match="registry"):
            TrafficReplay(
                Platform(dataset="criteo", random_state=0),
                engine,
                retrainer=retrainer,
            )

    def test_rejects_foreign_clock_under_simulated_time(self):
        from repro.ab.platform import Platform
        from repro.serving import TrafficReplay

        registry, clock, engine = self._engine()
        retrainer = Retrainer(registry, every_outcomes=10, clock=ManualClock())
        with pytest.raises(ValueError, match="clock"):
            TrafficReplay(
                Platform(dataset="criteo", random_state=0),
                engine,
                retrainer=retrainer,
                interarrival_s=1.0,
            )

    def test_replay_feeds_retrainer(self):
        from repro.ab.platform import Platform
        from repro.serving import TrafficReplay

        registry, clock, engine = self._engine()
        retrainer = Retrainer(
            registry, every_outcomes=10_000, window=256, min_outcomes=32, clock=clock
        )
        replay = TrafficReplay(
            Platform(dataset="criteo", random_state=0),
            engine,
            retrainer=retrainer,
            interarrival_s=1.0,
            random_state=1,
        )
        replay.replay_days(n_days=1, n_users=200, budget_fraction=0.3)
        assert retrainer.n_observed == 200  # every decided request observed

    def test_paired_outcomes_match_across_policies(self):
        """CRN pairing: the same (user, treated) draw realises identically
        no matter what order decisions resolve in."""
        from repro.ab.platform import Platform
        from repro.serving import ScoringEngine, TrafficReplay

        def outcomes(batch_size):
            registry = _registry_with_champion(3, d=12)
            engine = ScoringEngine(registry, batch_size=batch_size)
            replay = TrafficReplay(
                Platform(dataset="criteo", random_state=7),
                engine,
                feedback=True,
                paired_outcomes=True,
                random_state=11,
            )
            day = replay.replay_days(n_days=1, n_users=300, budget_fraction=0.3)
            return day.days[0].incremental_revenue

        # different batch sizes change decision *order*, not draws
        assert outcomes(8) == pytest.approx(outcomes(64))


class TestClosedLoopUnderDrift:
    """The E2E acceptance pin (CRN-paired frozen vs retraining runs)."""

    @staticmethod
    def _run(retrain: bool, seed: int = 0):
        from repro.ab.platform import Platform
        from repro.serving import AutoPromoter, ScoringEngine, TrafficReplay

        platform = Platform(
            dataset="criteo",
            random_state=seed,
            drift_day=2,
            drift_strength=3.0,
            day_effect=0.0,
        )
        # champion fit on a pre-drift probe cohort (separate platform so
        # the serving stream itself is untouched)
        probe = Platform(dataset="criteo", random_state=seed + 100).daily_cohort(
            3000, day=1
        )
        rng = np.random.default_rng(seed + 7)
        t = rng.integers(0, 2, probe.n)
        u = rng.random((probe.n, 2))
        y_r = (u[:, 0] < probe.tau_r) * t
        y_c = (u[:, 1] < probe.tau_c) * t
        champion = TreatedNetRidge(alpha=1.0).fit(probe.x, y_r - y_c, t)

        clock = ManualClock()
        registry = ModelRegistry(random_state=seed)
        registry.register(champion, name="champion", promote=True)
        engine = ScoringEngine(
            registry, batch_size=32, max_latency_ms=50.0, clock=clock
        )
        promoter = AutoPromoter(
            registry,
            clock=clock,
            ramp=(0.2, 0.6),
            step_every_s=300.0,
            min_decided=80,
            check_every=25,
            hold_decided=80,
        )
        retrainer = (
            Retrainer(
                registry,
                clock=clock,
                window=1500,
                min_outcomes=500,
                every_outcomes=1500,
            )
            if retrain
            else None
        )
        replay = TrafficReplay(
            platform,
            engine,
            feedback=False,
            interarrival_s=1.0,
            promoter=promoter,
            retrainer=retrainer,
            paired_outcomes=True,
            random_state=seed + 1,
        )
        result = replay.replay_days(n_days=6, n_users=1500, budget_fraction=0.3)
        return result, promoter, retrainer

    def test_retraining_beats_frozen_champion(self):
        frozen, _, _ = self._run(retrain=False)
        looped, promoter, retrainer = self._run(retrain=True)
        rev_frozen = sum(d.incremental_revenue for d in frozen.days)
        rev_loop = sum(d.incremental_revenue for d in looped.days)

        # the acceptance pin: strictly better cumulative revenue under
        # drift, on CRN-paired outcome draws
        assert rev_loop > rev_frozen

        # challengers were staged by the retrainer, not by hand, and at
        # least one of them earned promotion through the ordinary gate
        assert retrainer.n_staged >= 1
        staged_versions = {
            e.version for e in retrainer.events if e.kind == "stage"
        }
        promoted = [e for e in promoter.events if e.kind == "promote"]
        assert promoted
        assert any(e.version in staged_versions for e in promoted)

"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary,
    check_consistent_length,
    check_in_open_interval,
    check_positive,
    check_probability,
)


class TestCheck2d:
    def test_passthrough(self):
        x = np.ones((3, 2))
        out = check_2d(x)
        np.testing.assert_array_equal(out, x)

    def test_1d_promoted_to_column(self):
        out = check_2d([1.0, 2.0, 3.0])
        assert out.shape == (3, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_2d(np.ones((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one row"):
            check_2d(np.ones((0, 3)))

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            check_2d([[1.0, np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_2d([[np.inf, 1.0]])

    def test_list_coerced_to_float(self):
        out = check_2d([[1, 2], [3, 4]])
        assert out.dtype == float


class TestCheck1d:
    def test_ravel(self):
        out = check_1d(np.ones((3, 1)))
        assert out.shape == (3,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one element"):
            check_1d([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            check_1d([1.0, np.nan])

    def test_name_in_message(self):
        with pytest.raises(ValueError, match="my_target"):
            check_1d([np.nan], name="my_target")


class TestCheckBinary:
    def test_valid(self):
        out = check_binary([0, 1, 1, 0])
        assert out.dtype == np.int64

    def test_all_ones_ok(self):
        check_binary([1, 1, 1])

    def test_two_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            check_binary([0, 1, 2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            check_binary([-1, 0, 1])

    def test_boolean_accepted(self):
        out = check_binary(np.array([True, False]))
        np.testing.assert_array_equal(out, [1, 0])


class TestConsistentLength:
    def test_equal_ok(self):
        check_consistent_length(np.ones(3), np.zeros(3))

    def test_unequal_raises(self):
        with pytest.raises(ValueError, match="Inconsistent"):
            check_consistent_length(np.ones(3), np.zeros(4))

    def test_names_in_message(self):
        with pytest.raises(ValueError, match="alpha=3.*beta=4"):
            check_consistent_length(np.ones(3), np.zeros(4), names=("alpha", "beta"))


class TestScalarChecks:
    def test_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1)

    def test_open_interval(self):
        assert check_in_open_interval(0.5, 0, 1) == 0.5
        with pytest.raises(ValueError):
            check_in_open_interval(0.0, 0, 1)
        with pytest.raises(ValueError):
            check_in_open_interval(1.0, 0, 1)

    def test_positive(self):
        assert check_positive(1.0) == 1.0
        with pytest.raises(ValueError):
            check_positive(0.0)
        assert check_positive(0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive(-1.0, strict=False)

"""Tests for the observability layer (``repro.obs``) and its hot-path
instrumentation of the serving/runtime stack."""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.ab.platform import Platform
from repro.ab.replay import PolicyReplay
from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Snapshot,
    from_json,
    parse_prometheus,
    prometheus_name,
    to_json,
    to_prometheus,
)
from repro.obs.trajectory import (
    BENCH_SCHEMA,
    append_run,
    bench_path,
    diff_runs,
    latest_run,
    load,
    main as trajectory_main,
    validate,
)
from repro.runtime import ManualClock, SerialBackend, ThreadBackend
from repro.serving.engine import ScoringEngine
from repro.serving.pacing import BudgetPacer
from repro.serving.simulator import TrafficReplay

REPO_ROOT = Path(__file__).resolve().parent.parent


class LinearROI:
    """Deterministic stub scorer: clipped linear projection of x."""

    def __init__(self, w: np.ndarray) -> None:
        self.w = np.asarray(w, dtype=float)

    def predict_roi(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.clip(x @ self.w, 1e-6, 1.0 - 1e-6)


@pytest.fixture
def stub_model():
    rng = np.random.default_rng(3)
    return LinearROI(rng.normal(size=12) * 0.05)


# ---------------------------------------------------------------------------
# live metrics
# ---------------------------------------------------------------------------
class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(4.5)
        assert c.value == 5.5

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_delta_and_merge(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(7)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.value == 10
        assert b.snapshot().delta(a.snapshot()).value == 4

    def test_delta_backwards_raises(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        with pytest.raises(ValueError, match="went backwards"):
            b.snapshot().delta(a.snapshot())


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_merge_sums_across_shards(self):
        # queue depths and spends add across shards — merge is a sum
        a, b = Gauge("g"), Gauge("g")
        a.set(4)
        b.set(9)
        assert a.snapshot().merge(b.snapshot()).value == 13

    def test_delta_is_signed(self):
        g = Gauge("g")
        g.set(10)
        before = g.snapshot()
        g.set(4)
        assert g.snapshot().delta(before).value == -6


class TestHistogram:
    def test_quantile_error_bound(self):
        """Every quantile is within relative_error of the exact order
        statistic — the sketch's headline guarantee."""
        rng = np.random.default_rng(0)
        values = np.exp(rng.normal(loc=-5.0, scale=2.0, size=5000))
        h = Histogram("h", relative_error=0.01)
        for v in values:
            h.record(v)
        ordered = np.sort(values)
        snap = h.snapshot()
        assert snap.relative_error <= 0.01 + 1e-12
        for q in (0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            rank = max(1, min(int(math.ceil(q * len(values))), len(values)))
            exact = ordered[rank - 1]
            approx = snap.quantile(q)
            assert abs(approx - exact) <= 0.01 * exact + 1e-15

    def test_memory_bounded_by_range_not_count(self):
        h = Histogram("h")
        for _ in range(10_000):
            h.record(0.5)  # one bucket no matter how many records
        assert len(h.snapshot().buckets) == 1
        assert h.count == 10_000

    def test_zero_bucket(self):
        h = Histogram("h", min_trackable=1e-9)
        h.record(0.0)
        h.record(1e-12)
        snap = h.snapshot()
        assert snap.zero_count == 2
        assert snap.quantile(0.5) == 0.0

    def test_rejects_negative_and_nan(self):
        h = Histogram("h")
        with pytest.raises(ValueError, match="non-negative"):
            h.record(-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            h.record(float("nan"))

    def test_exact_count_sum_min_max(self):
        h = Histogram("h")
        for v in (0.5, 1.5, 2.5):
            h.record(v)
        snap = h.snapshot()
        assert snap.count == 3
        assert snap.sum == pytest.approx(4.5)
        assert snap.min == 0.5
        assert snap.max == 2.5
        assert snap.mean == pytest.approx(1.5)

    def test_merge_equals_recording_everything_once(self):
        rng = np.random.default_rng(1)
        va, vb = rng.exponential(size=400), rng.exponential(size=300)
        a, b, both = Histogram("h"), Histogram("h"), Histogram("h")
        for v in va:
            a.record(v)
            both.record(v)
        for v in vb:
            b.record(v)
            both.record(v)
        merged = a.snapshot().merge(b.snapshot())
        reference = both.snapshot()
        assert merged.count == reference.count
        assert merged.sum == pytest.approx(reference.sum)
        assert dict(merged.buckets) == dict(reference.buckets)
        for q in (0.1, 0.5, 0.9):
            assert merged.quantile(q) == reference.quantile(q)

    def test_merge_commutative(self):
        a, b = Histogram("h"), Histogram("h")
        a.record(0.1)
        b.record(3.0)
        ab = a.snapshot().merge(b.snapshot())
        ba = b.snapshot().merge(a.snapshot())
        assert ab == ba

    def test_merge_gamma_mismatch_raises(self):
        a = Histogram("h", relative_error=0.01).snapshot()
        b = Histogram("h", relative_error=0.05).snapshot()
        with pytest.raises(ValueError, match="gamma"):
            a.merge(b)

    def test_delta_is_the_window_distribution(self):
        h = Histogram("h")
        for v in (0.1, 0.2, 0.3):
            h.record(v)
        before = h.snapshot()
        for v in (5.0, 6.0, 7.0, 8.0):
            h.record(v)
        window = h.snapshot().delta(before)
        assert window.count == 4
        assert window.sum == pytest.approx(26.0)
        # the window's median is a window value, not a pre-window one
        assert window.quantile(0.5) == pytest.approx(6.0, rel=0.02)

    def test_delta_backwards_raises(self):
        a, b = Histogram("h"), Histogram("h")
        a.record(1.0)
        with pytest.raises(ValueError, match="went backwards"):
            b.snapshot().delta(a.snapshot())


class TestSnapshot:
    def _registry(self, c=3.0, g=7.0, hvals=(0.1, 0.9)):
        reg = MetricsRegistry()
        reg.counter("c").inc(c)
        reg.gauge("g").set(g)
        h = reg.histogram("h")
        for v in hvals:
            h.record(v)
        return reg

    def test_mapping_interface(self):
        snap = self._registry().snapshot()
        assert set(snap) == {"c", "g", "h"}
        assert len(snap) == 3
        assert snap["c"].value == 3.0

    def test_merge_unions_and_folds(self):
        a = MetricsRegistry()
        a.counter("shared").inc(2)
        a.counter("only_a").inc(1)
        b = MetricsRegistry()
        b.counter("shared").inc(5)
        b.gauge("only_b").set(9)
        merged = a.snapshot().merge(b.snapshot())
        assert merged["shared"].value == 7
        assert merged["only_a"].value == 1
        assert merged["only_b"].value == 9

    def test_merge_commutative_whole_registry(self):
        a = self._registry(c=1, g=2, hvals=(0.5,)).snapshot()
        b = self._registry(c=9, g=-4, hvals=(1.5, 2.5)).snapshot()
        assert a.merge(b).to_dict() == b.merge(a).to_dict()

    def test_merge_kind_clash_raises(self):
        a = Snapshot({"m": Counter("m").snapshot()})
        b = Snapshot({"m": Gauge("m").snapshot()})
        with pytest.raises(ValueError, match="counter on one side"):
            a.merge(b)

    def test_delta_absent_from_older_passes_through(self):
        reg = self._registry()
        before = reg.snapshot()
        reg.counter("c").inc(10)
        reg.counter("new_metric").inc(2)
        d = reg.snapshot().delta(before)
        assert d["c"].value == 10
        assert d["new_metric"].value == 2


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("m")

    def test_adopt_registers_and_replaces(self):
        reg = MetricsRegistry()
        first = reg.adopt(Counter("c"))
        first.inc(5)
        second = reg.adopt(Counter("c"))  # re-constructed component
        assert reg.get("c") is second
        assert reg.snapshot()["c"].value == 0.0
        assert "c" in reg and len(reg) == 1


class TestNullRegistry:
    def test_hands_out_shared_noops(self):
        c = NULL_REGISTRY.counter("anything")
        assert c is NULL_REGISTRY.counter("something_else")
        c.inc(100)
        assert c.value == 0.0
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.histogram("h").record(1.0)
        assert len(NULL_REGISTRY.snapshot()) == 0
        assert NULL_REGISTRY.names() == []

    def test_adopt_returns_metric_uncollected(self):
        c = Counter("real")
        assert NULL_REGISTRY.adopt(c) is c
        c.inc()
        assert c.value == 1.0  # the component's metric stays real
        assert "real" not in NULL_REGISTRY

    def test_span_is_noop(self):
        with NULL_REGISTRY.span("op"):
            pass
        assert len(NULL_REGISTRY.snapshot()) == 0


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------
class TestSpan:
    def test_manual_clock_exact_durations(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        with reg.span("flush", clock=clock):
            clock.advance(0.005)
        with reg.span("flush", clock=clock):
            clock.advance(0.007)
        snap = reg.snapshot()["span.flush.seconds"]
        assert snap.count == 2
        assert snap.sum == pytest.approx(0.012)
        assert snap.min == pytest.approx(0.005)
        assert snap.max == pytest.approx(0.007)

    def test_exception_still_records(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        with pytest.raises(RuntimeError):
            with reg.span("boom", clock=clock):
                clock.advance(1.0)
                raise RuntimeError("body failed")
        snap = reg.snapshot()["span.boom.seconds"]
        assert snap.count == 1
        assert snap.max == pytest.approx(1.0)

    def test_wall_clock_fallback(self):
        reg = MetricsRegistry()
        with reg.span("op"):
            pass
        assert reg.snapshot()["span.op.seconds"].count == 1


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
def _full_snapshot() -> Snapshot:
    reg = MetricsRegistry()
    reg.counter("engine.requests").inc(42)
    reg.gauge("engine.queue_depth").set(7)
    h = reg.histogram("engine.latency_seconds")
    for v in (0.0, 0.001, 0.004, 0.004, 2.5):
        h.record(v)
    return reg.snapshot()


class TestJsonExport:
    def test_round_trip_lossless(self):
        snap = _full_snapshot()
        restored = from_json(to_json(snap))
        assert restored.to_dict() == snap.to_dict()
        # quantiles survive serialisation exactly
        assert restored["engine.latency_seconds"].quantile(0.5) == snap[
            "engine.latency_seconds"
        ].quantile(0.5)

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError, match="repro.obs.snapshot/1"):
            from_json(json.dumps({"schema": "other/1", "metrics": {}}))

    def test_empty_histogram_round_trips(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        restored = from_json(to_json(reg.snapshot()))
        assert restored["h"].count == 0


class TestPrometheusExport:
    def test_name_sanitisation(self):
        assert prometheus_name("engine.flush.batch_full") == "engine_flush_batch_full"
        assert prometheus_name("9lives") == "_9lives"

    def test_format_conformance_round_trip(self):
        """The exporter's output parses under a strict v0.0.4 reader and
        the numbers survive: the conformance test the ISSUE asks for."""
        snap = _full_snapshot()
        families = parse_prometheus(to_prometheus(snap))
        assert families["engine_requests_total"] == {"type": "counter", "value": 42.0}
        assert families["engine_queue_depth"] == {"type": "gauge", "value": 7.0}
        hist = families["engine_latency_seconds"]
        assert hist["type"] == "histogram"
        assert hist["count"] == 5.0
        assert hist["sum"] == pytest.approx(2.509)
        # buckets are cumulative, monotone, and end at +Inf == count
        cum = [c for _le, c in hist["buckets"]]
        assert cum == sorted(cum)
        assert hist["buckets"][-1] == ("+Inf", 5.0)
        assert hist["buckets"][0][0] == "0.0" and hist["buckets"][0][1] == 1.0
        # upper bounds really bound: re-accumulating bucket counts
        # against the snapshot's buckets gives the same totals
        assert cum[-1] == hist["count"]

    def test_counter_total_suffix_not_doubled(self):
        reg = MetricsRegistry()
        reg.counter("ops_total").inc(3)
        text = to_prometheus(reg.snapshot())
        assert "ops_total_total" not in text
        assert "ops_total 3.0" in text

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError, match="no preceding TYPE"):
            parse_prometheus("orphan_sample 1.0\n")
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("# TYPE x counter\nx_total not-a-number extra\n")
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_prometheus("# TYPE x summary\n")


# ---------------------------------------------------------------------------
# benchmark trajectory
# ---------------------------------------------------------------------------
def _metric(value, direction="higher", gated=True, **kw):
    return {"value": value, "direction": direction, "gated": gated, **kw}


def _run(metrics, mode="smoke"):
    return {
        "recorded_at": "2026-08-08T00:00:00Z",
        "mode": mode,
        "commit": None,
        "metrics": {
            name: {"unit": "", **m} for name, m in metrics.items()
        },
        "snapshot": None,
    }


class TestTrajectorySchema:
    def test_append_then_load_round_trip(self, tmp_path):
        path = bench_path(tmp_path, "serving")
        run = append_run(
            path, "serving", {"rps": {"value": 123.4, "unit": "req/s"}}, mode="smoke"
        )
        assert run["metrics"]["rps"]["direction"] == "higher"  # default filled
        assert run["metrics"]["rps"]["gated"] is False
        doc = load(path)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["area"] == "serving"
        append_run(path, "serving", {"rps": {"value": 150.0}}, mode="full")
        doc = load(path)
        assert len(doc["runs"]) == 2
        assert latest_run(doc, "smoke")["metrics"]["rps"]["value"] == 123.4
        assert latest_run(doc, "full")["metrics"]["rps"]["value"] == 150.0
        assert latest_run({"runs": doc["runs"]}, "smoke") is not None

    def test_append_wrong_area_raises(self, tmp_path):
        path = bench_path(tmp_path, "serving")
        append_run(path, "serving", {"m": {"value": 1}}, mode="smoke")
        with pytest.raises(ValueError, match="records area"):
            append_run(path, "runtime", {"m": {"value": 1}}, mode="smoke")

    def test_validate_rejects_bad_documents(self):
        good = {"schema": BENCH_SCHEMA, "area": "a", "runs": [_run({"m": _metric(1.0)})]}
        validate(good)
        for mutate, pattern in [
            (lambda d: d.update(schema="x/9"), "schema"),
            (lambda d: d.update(area=""), "area"),
            (lambda d: d.update(runs=[]), "runs"),
            (lambda d: d["runs"][0].update(mode="quick"), "mode"),
            (lambda d: d["runs"][0]["metrics"]["m"].update(direction="up"), "direction"),
            (lambda d: d["runs"][0]["metrics"]["m"].update(value=True), "value"),
            (lambda d: d["runs"][0]["metrics"]["m"].update(gated="yes"), "gated"),
            (lambda d: d["runs"][0]["metrics"]["m"].update(tolerance=-0.1), "tolerance"),
        ]:
            doc = json.loads(json.dumps(good))
            mutate(doc)
            with pytest.raises(ValueError, match=pattern):
                validate(doc)

    def test_committed_trajectory_files_are_valid(self):
        """The repo-root BENCH files the CI diff runs against must exist
        and pass schema validation (the ISSUE's acceptance bar)."""
        for area in ("serving", "runtime"):
            path = bench_path(REPO_ROOT, area)
            assert path.exists(), f"missing committed trajectory {path}"
            doc = load(path)
            assert doc["area"] == area
            # at least one smoke run to gate CI pushes against
            assert latest_run(doc, "smoke") is not None
            # something is actually gated, else the diff guards nothing
            gated = [
                name
                for run in doc["runs"]
                for name, m in run["metrics"].items()
                if m["gated"]
            ]
            assert gated, f"{path} has no gated metrics"


class TestTrajectoryDiff:
    def test_within_tolerance_passes(self):
        base = _run({"rps": _metric(100.0)})
        new = _run({"rps": _metric(85.0)})  # -15% within the 20% band
        assert diff_runs(base, new) == []

    def test_higher_direction_regression(self):
        base = _run({"rps": _metric(100.0)})
        new = _run({"rps": _metric(70.0)})  # -30%
        regs = diff_runs(base, new, area="serving")
        assert len(regs) == 1
        assert regs[0].metric == "rps"
        assert "serving" in str(regs[0])

    def test_lower_direction_regression(self):
        base = _run({"p95": _metric(10.0, direction="lower")})
        assert diff_runs(base, _run({"p95": _metric(11.0, direction="lower")})) == []
        regs = diff_runs(base, _run({"p95": _metric(13.0, direction="lower")}))
        assert len(regs) == 1

    def test_ungated_metrics_never_fail(self):
        base = _run({"rps": _metric(100.0, gated=False)})
        assert diff_runs(base, _run({"rps": _metric(1.0, gated=False)})) == []

    def test_missing_gated_metric_is_a_regression(self):
        base = _run({"rps": _metric(100.0)})
        regs = diff_runs(base, _run({"other": _metric(1.0)}))
        assert len(regs) == 1 and math.isnan(regs[0].new)

    def test_per_metric_tolerance_overrides_default(self):
        base = _run({"ratio": _metric(1.0, tolerance=0.01)})
        regs = diff_runs(base, _run({"ratio": _metric(0.95)}))
        assert len(regs) == 1  # -5% fails the metric's own 1% band

    def test_improvements_never_fail(self):
        base = _run({"rps": _metric(100.0), "p95": _metric(10.0, direction="lower")})
        new = _run({"rps": _metric(500.0), "p95": _metric(1.0, direction="lower")})
        assert diff_runs(base, new) == []


class TestTrajectoryCli:
    def _write(self, root, area, value, mode="smoke"):
        append_run(
            bench_path(root, area),
            area,
            {"m": {"value": value, "gated": True}},
            mode=mode,
        )

    def test_validate_ok_and_diff_clean(self, tmp_path, capsys):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        self._write(base, "serving", 100.0)
        self._write(new, "serving", 95.0)
        assert trajectory_main(["validate", str(bench_path(base, "serving"))]) == 0
        assert (
            trajectory_main(["diff", "--baseline", str(base), "--new", str(new)]) == 0
        )
        assert "ok" in capsys.readouterr().out

    def test_diff_fails_on_regression(self, tmp_path, capsys):
        base, new = tmp_path / "base", tmp_path / "new"
        base.mkdir(), new.mkdir()
        self._write(base, "serving", 100.0)
        self._write(new, "serving", 50.0)
        assert (
            trajectory_main(["diff", "--baseline", str(base), "--new", str(new)]) == 1
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_diff_without_baseline_is_trajectory_start(self, tmp_path, capsys):
        new = tmp_path / "new"
        new.mkdir()
        self._write(new, "brand_new_area", 1.0)
        assert (
            trajectory_main(["diff", "--baseline", str(tmp_path), "--new", str(new)])
            == 0
        )
        assert "trajectory starts here" in capsys.readouterr().out

    def test_diff_empty_new_dir_fails(self, tmp_path):
        new = tmp_path / "empty"
        new.mkdir()
        assert (
            trajectory_main(["diff", "--baseline", str(tmp_path), "--new", str(new)])
            == 1
        )


# ---------------------------------------------------------------------------
# hot-path instrumentation
# ---------------------------------------------------------------------------
class TestEngineInstrumentation:
    def test_counters_flow_through_registry(self, stub_model):
        reg = MetricsRegistry()
        clock = ManualClock()
        engine = ScoringEngine(
            stub_model, batch_size=4, cache_size=16, clock=clock, metrics=reg
        )
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(10, 12))
        for row in rows:
            engine.submit(row)
        for row in rows[:5]:  # repeats: cache hits
            engine.submit(row)
        engine.flush()
        snap = reg.snapshot()
        # the registry sees the same totals the stats property renders
        for name, value in engine.stats.items():
            assert snap[f"engine.{name}"].value == value
        assert snap["engine.requests"].value == 15
        assert snap["engine.cache_hits"].value > 0
        assert snap["engine.queue_depth"].value == 0  # drained
        # the flush span recorded under the engine's own clock
        assert snap["span.engine.flush.seconds"].count == engine.stats["flushes"]

    def test_latency_histogram_matches_log(self, stub_model):
        clock = ManualClock()
        engine = ScoringEngine(
            stub_model, batch_size=8, cache_size=0, clock=clock,
            max_latency_ms=50.0,
        )
        rng = np.random.default_rng(1)
        for row in rng.normal(size=(30, 12)):
            clock.advance(0.001)
            engine.submit(row)
            engine.poll()
        engine.flush()
        assert engine.latency_hist.count == len(engine.latencies)
        # sketch quantile tracks the exact quantile within 1%
        exact = float(np.quantile(engine.latencies, 0.95, method="inverted_cdf"))
        assert engine.latency_quantile(0.95) == pytest.approx(exact, rel=0.011, abs=1e-9)

    def test_latency_quantile_unbiased_under_eviction(self, stub_model):
        """The satellite bug: with latency_log_size evicting, quantiles
        from the raw list only see recent entries; the histogram sees
        every recorded latency."""
        clock = ManualClock()
        engine = ScoringEngine(
            stub_model, batch_size=1, cache_size=0, clock=clock,
            latency_log_size=20,
        )
        rng = np.random.default_rng(2)
        # first 160 requests wait 10ms, last 40 wait 1ms: a recency-
        # biased reader sees mostly 1ms and underestimates the median
        for i, row in enumerate(rng.normal(size=(200, 12))):
            engine.submit(row)  # batch_size=1: scores immediately
            clock.advance(0.010 if i < 160 else 0.001)
        assert engine.latencies_dropped > 0
        assert engine.latencies_dropped + len(engine.latencies) == 200
        assert engine.latency_hist.count == 200
        # all engine latencies here are ~0 (batch=1 scores at submit);
        # drive the contrast through the histogram directly instead
        h = Histogram("check")
        for _ in range(160):
            h.record(0.010)
        for _ in range(40):
            h.record(0.001)
        assert h.quantile(0.5) == pytest.approx(0.010, rel=0.02)

    def test_null_registry_bit_identical(self, stub_model):
        """Scores and stats are bit-identical with observability off and
        on — the acceptance bar for the serial path."""
        rng = np.random.default_rng(7)
        rows = rng.normal(size=(64, 12))

        def run(metrics):
            clock = ManualClock()
            engine = ScoringEngine(
                stub_model, batch_size=8, cache_size=32, clock=clock,
                metrics=metrics,
            )
            ids = []
            for row in rows:
                clock.advance(0.001)
                ids.append(engine.submit(row))
            engine.flush()
            return np.array([engine.take(i) for i in ids]), dict(engine.stats)

        scores_null, stats_null = run(None)
        scores_live, stats_live = run(MetricsRegistry())
        assert np.array_equal(scores_null, scores_live)  # bitwise
        assert stats_null == stats_live


class TestReplayInstrumentation:
    def test_latencies_dropped_accounting(self, stub_model):
        platform = Platform(dataset="criteo", random_state=0)
        clock = ManualClock()
        engine = ScoringEngine(
            stub_model, batch_size=16, cache_size=0, clock=clock,
            max_latency_ms=30.0, latency_log_size=25,
        )
        replay = TrafficReplay(platform, engine, interarrival_s=0.001)
        result = replay.replay_day(300, budget_fraction=0.3)
        # per-day accounting: raw log + evicted == every scored request
        assert result.latencies_dropped > 0
        assert len(result.latencies) + result.latencies_dropped == 300
        assert result.summary()["latencies_dropped"] == result.latencies_dropped
        # the histogram delta saw all 300, so quantiles stay unbiased
        assert result.latency_hist is not None
        assert result.latency_hist.count == 300
        q = result.latency_quantile(0.95)
        assert 0.0 <= q <= 0.030 * 1.02

    def test_metrics_delta_per_day(self, stub_model):
        platform = Platform(dataset="criteo", random_state=0)
        reg = MetricsRegistry()
        engine = ScoringEngine(
            stub_model, batch_size=32, cache_size=0, clock=ManualClock(),
            metrics=reg,
        )
        replay = TrafficReplay(platform, engine, interarrival_s=0.001)
        r1 = replay.replay_day(120, budget_fraction=0.3)
        r2 = replay.replay_day(80, day=2, budget_fraction=0.3)
        assert r1.metrics_delta["engine.requests"]["value"] == 120
        assert r2.metrics_delta["engine.requests"]["value"] == 80
        assert r1.engine_stats["requests"] == 120  # stats delta agrees

    def test_uninstrumented_replay_has_no_delta(self, stub_model):
        platform = Platform(dataset="criteo", random_state=0)
        engine = ScoringEngine(stub_model, batch_size=32, cache_size=0)
        result = TrafficReplay(platform, engine).replay_day(100, budget_fraction=0.3)
        assert result.metrics_delta is None

    def test_policy_replay_counters_and_deltas(self):
        platform = Platform(dataset="criteo", random_state=0)
        rng = np.random.default_rng(0)
        w = rng.normal(size=12)
        reg = MetricsRegistry()
        replay = PolicyReplay(
            platform,
            policy_sets={
                "a": {"model": lambda x: x @ w},
                "b": {"model": lambda x: -(x @ w)},
            },
            random_state=0,
            metrics=reg,
        )
        result = replay.run(n_days=2, cohort_size=400)
        assert reg.snapshot()["replay.policy.days"].value == 2
        assert reg.snapshot()["replay.policy.users"].value == 800
        assert reg.snapshot()["replay.policy.scorings"].value == 4  # 2 sets x 2 days
        assert len(result.metrics_deltas) == 2
        for day_delta in result.metrics_deltas:
            assert day_delta["replay.policy.days"]["value"] == 1
            assert day_delta["replay.policy.users"]["value"] == 400


class TestComponentInstrumentation:
    def test_pacer_counters_and_gauges(self):
        reg = MetricsRegistry()
        pacer = BudgetPacer(10.0, 100, metrics=reg)
        rng = np.random.default_rng(0)
        admits = sum(pacer.offer(float(rng.random()), 0.5) for _ in range(50))
        snap = reg.snapshot()
        assert snap["pacer.offers"].value == 50
        assert snap["pacer.admits"].value == admits
        assert snap["pacer.refreshes"].value >= 1
        assert snap["pacer.spend"].value == pytest.approx(pacer.spent)

    def test_promoter_lifecycle_counters(self):
        from repro.serving.promotion import AutoPromoter
        from repro.serving.registry import ModelRegistry

        model_reg = ModelRegistry(traffic_split=0.0, random_state=0)
        model_reg.register(LinearROI(np.zeros(4)), name="champion")
        model_reg.register(LinearROI(np.ones(4)), name="challenger")
        reg = MetricsRegistry()
        clock = ManualClock()
        promoter = AutoPromoter(
            model_reg, clock=clock, ramp=(0.1, 0.5), step_every_s=10.0,
            auto_start=False, metrics=reg,
        )
        promoter.start()
        clock.advance(10.0)
        promoter.poll()
        rng = np.random.default_rng(0)
        for _ in range(30):
            promoter.observe(2, True, float(rng.random() < 0.5), 0.0)
        snap = reg.snapshot()
        assert snap["promoter.start"].value == 1
        assert snap["promoter.ramp"].value == 1
        assert snap["promoter.observations"].value == 30
        assert snap["promoter.traffic_split"].value == pytest.approx(0.5)
        assert snap["promoter.ramp_stage"].value == 1

    def test_serial_backend_counters(self):
        reg = MetricsRegistry()
        backend = SerialBackend(metrics=reg)
        for i in range(5):
            assert backend.submit(lambda v=i: v * 2).result() == i * 2
        snap = reg.snapshot()
        assert snap["backend.tasks_submitted"].value == 5
        assert snap["backend.tasks_completed"].value == 5

    def test_thread_backend_counters(self):
        reg = MetricsRegistry()
        with ThreadBackend(2, metrics=reg) as backend:
            futures = [backend.submit(lambda v=i: v + 1) for i in range(8)]
            assert sorted(f.result() for f in futures) == list(range(1, 9))
        snap = reg.snapshot()
        assert snap["backend.pool_starts"].value == 1
        assert snap["backend.tasks_submitted"].value == 8
        assert snap["backend.tasks_completed"].value == 8

    def test_uninstrumented_backend_attaches_no_callbacks(self):
        backend = ThreadBackend(2)
        future = backend.submit(lambda: 1)
        assert future.result() == 1
        backend.shutdown()
        assert backend.metrics is NULL_REGISTRY

"""Tests for the beyond-the-paper extensions (isotonic recalibration)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extensions import IsotonicRoiRecalibration, pav_isotonic


class TestPavIsotonic:
    def test_already_monotone_unchanged(self):
        values = np.array([0.1, 0.2, 0.5, 0.9])
        np.testing.assert_allclose(pav_isotonic(values), values)

    def test_single_violation_pooled(self):
        values = np.array([0.1, 0.5, 0.3, 0.9])
        out = pav_isotonic(values)
        np.testing.assert_allclose(out, [0.1, 0.4, 0.4, 0.9])

    def test_fully_decreasing_collapses_to_mean(self):
        values = np.array([3.0, 2.0, 1.0])
        np.testing.assert_allclose(pav_isotonic(values), [2.0, 2.0, 2.0])

    def test_weights_shift_pooled_mean(self):
        values = np.array([0.0, 1.0, 0.0])
        out = pav_isotonic(values, weights=np.array([1.0, 1.0, 3.0]))
        # blocks 2,3 pool: (1*1 + 0*3)/4 = 0.25
        np.testing.assert_allclose(out, [0.0, 0.25, 0.25])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weights"):
            pav_isotonic(np.array([1.0, 2.0]), weights=np.array([1.0, 0.0]))

    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_output_monotone_and_mean_preserving(self, raw):
        values = np.asarray(raw)
        out = pav_isotonic(values)
        assert np.all(np.diff(out) >= -1e-12)
        assert out.mean() == pytest.approx(values.mean(), abs=1e-9)

    @given(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False),
            min_size=2,
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, raw):
        values = np.asarray(raw)
        once = pav_isotonic(values)
        twice = pav_isotonic(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)


class TestIsotonicRoiRecalibration:
    def _calibration_rct(self, n=6000, seed=0, miscalibrated=True):
        """roi_hat is a *distorted* but order-preserving view of roi."""
        rng = np.random.default_rng(seed)
        roi = np.linspace(0.15, 0.85, n)
        rng.shuffle(roi)
        t = rng.integers(0, 2, size=n)
        tau_c = 0.5
        y_c = (rng.random(n) < 0.2 + tau_c * t).astype(float)
        y_r = (rng.random(n) < 0.1 + roi * tau_c * t).astype(float)
        roi_hat = roi**3 if miscalibrated else roi  # monotone distortion
        return roi, roi_hat, t, y_r, y_c

    def test_recalibration_corrects_scale(self):
        roi, roi_hat, t, y_r, y_c = self._calibration_rct()
        recal = IsotonicRoiRecalibration(n_bins=12).fit(roi_hat, t, y_r, y_c)
        out = recal.transform(roi_hat)
        # the recalibrated values should be closer to the true roi scale
        err_before = float(np.mean(np.abs(roi_hat - roi)))
        err_after = float(np.mean(np.abs(out - roi)))
        assert err_after < err_before

    def test_transform_is_monotone(self):
        _, roi_hat, t, y_r, y_c = self._calibration_rct()
        recal = IsotonicRoiRecalibration(n_bins=10).fit(roi_hat, t, y_r, y_c)
        grid = np.linspace(roi_hat.min(), roi_hat.max(), 200)
        out = recal.transform(grid)
        assert np.all(np.diff(out) >= -1e-12)

    def test_output_within_roi_range(self):
        _, roi_hat, t, y_r, y_c = self._calibration_rct()
        recal = IsotonicRoiRecalibration(n_bins=10).fit(roi_hat, t, y_r, y_c)
        out = recal.transform(np.array([-100.0, 0.5, 100.0]))
        assert np.all((out > 0) & (out < 1))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            IsotonicRoiRecalibration().transform(np.array([0.5]))

    def test_too_small_calibration_rejected(self):
        rng = np.random.default_rng(0)
        n = 30
        roi_hat = rng.random(n)
        t = rng.integers(0, 2, size=n)
        t[:2] = [0, 1]
        y_r = rng.random(n)
        y_c = rng.random(n)
        with pytest.raises(ValueError, match="calibration"):
            IsotonicRoiRecalibration(n_bins=10, min_arm_per_bin=50).fit(
                roi_hat, t, y_r, y_c
            )

    def test_fit_transform_equivalent(self):
        _, roi_hat, t, y_r, y_c = self._calibration_rct(n=3000)
        a = IsotonicRoiRecalibration(n_bins=8).fit_transform(roi_hat, t, y_r, y_c)
        b = IsotonicRoiRecalibration(n_bins=8).fit(roi_hat, t, y_r, y_c).transform(roi_hat)
        np.testing.assert_allclose(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="n_bins"):
            IsotonicRoiRecalibration(n_bins=1)
        with pytest.raises(ValueError, match="min_arm_per_bin"):
            IsotonicRoiRecalibration(min_arm_per_bin=0)
